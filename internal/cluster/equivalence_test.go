package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"desh/internal/core"
	"desh/internal/logparse"
	"desh/internal/logsim"
	"desh/internal/persist"
	"desh/internal/stream"
)

var (
	modelOnce  sync.Once
	modelBytes []byte
	modelErr   error
)

// freshPipeline returns an independent copy of one shared trained
// pipeline (each streamer mutates its encoder, so instances must not
// share one).
func freshPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	modelOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Epochs1 = 0
		cfg.Epochs2 = 150
		p, err := core.New(cfg)
		if err != nil {
			modelErr = err
			return
		}
		run, err := logsim.Generate(logsim.Config{
			Profile: logsim.Profiles()[2], Nodes: 30, Hours: 48, Failures: 30, Seed: 32,
		})
		if err != nil {
			modelErr = err
			return
		}
		events := make([]logparse.Event, len(run.Events))
		for i, ge := range run.Events {
			ev, err := logparse.ParseLine(ge.Line())
			if err != nil {
				modelErr = err
				return
			}
			events[i] = ev
		}
		if _, err := p.Train(events); err != nil {
			modelErr = err
			return
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			modelErr = err
			return
		}
		modelBytes = buf.Bytes()
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	p, err := core.Load(bytes.NewReader(modelBytes))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// equivLines generates the serving stream and verifies the equivalence
// precondition: no node has two events at the same microsecond, so
// per-node timestamp order is a total order and reorder tie-breaks
// cannot diverge between runs.
func equivLines(t *testing.T, seed int64) (lines []string, maxPerNode int) {
	t.Helper()
	run, err := logsim.Generate(logsim.Config{
		Profile: logsim.Profiles()[2], Nodes: 18, Hours: 12, Failures: 10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	perNode := make(map[string]int)
	lines = make([]string, len(run.Events))
	for i, ge := range run.Events {
		lines[i] = ge.Line()
		k := ge.Node + "|" + fmt.Sprint(ge.Time.UnixNano())
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("seed %d: node %s has two events at %v; pick another seed", seed, ge.Node, ge.Time)
		}
		perNode[ge.Node]++
		if perNode[ge.Node] > maxPerNode {
			maxPerNode = perNode[ge.Node]
		}
	}
	return lines, maxPerNode
}

// equivOpts configures a streamer for order-independent equivalence:
// the allowed-lateness window outlasts the whole run and the reorder
// depth holds every event of a node, so each node's events reach the
// chain tracker in timestamp order at drain time no matter how
// failover shuffled their arrival.
func equivOpts(depth int, dir string) []stream.Option {
	opts := []stream.Option{
		stream.WithShards(2),
		stream.WithQuietPeriod(time.Minute),
		stream.WithEarlyDetect(true),
		stream.WithAlertBuffer(16384),
		stream.WithSnapshotEvery(time.Hour),
		stream.WithAllowedLateness(1000 * time.Hour),
		stream.WithReorderDepth(depth),
		stream.WithDedupWindow(512),
	}
	if dir != "" {
		opts = append(opts, stream.WithStateDir(dir))
	}
	return opts
}

func collectAlerts(s *stream.Streamer) func() []stream.Alert {
	done := make(chan []stream.Alert, 1)
	go func() {
		var alerts []stream.Alert
		for a := range s.Alerts() {
			alerts = append(alerts, a)
		}
		done <- alerts
	}()
	return func() []stream.Alert { return <-done }
}

func alertMultiset(alerts []stream.Alert) map[string]int {
	m := make(map[string]int, len(alerts))
	for _, a := range alerts {
		m[persist.AlertRecord{
			Node:        a.Node,
			FlaggedNano: a.FlaggedAt.UnixNano(),
			LeadBits:    math.Float64bits(a.LeadSeconds),
			MSEBits:     math.Float64bits(a.MSE),
			Provisional: a.Provisional,
		}.LedgerKey()]++
	}
	return m
}

func baselineMultiset(t *testing.T, lines []string, depth int) map[string]int {
	t.Helper()
	s, err := stream.New(freshPipeline(t), equivOpts(depth, "")...)
	if err != nil {
		t.Fatal(err)
	}
	wait := collectAlerts(s)
	for _, line := range lines {
		if err := s.IngestLine(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := alertMultiset(wait())
	if len(want) < 3 {
		t.Fatalf("baseline fired only %d distinct alerts; run too quiet to pin equivalence", len(want))
	}
	return want
}

func compareMultisets(t *testing.T, label string, got, want map[string]int) {
	t.Helper()
	for k, n := range want {
		if got[k] != n {
			t.Errorf("alert %s: %s delivered %d, baseline %d", k, label, got[k], n)
		}
	}
	for k, n := range got {
		if want[k] != n {
			t.Errorf("spurious alert %s: %s delivered %d, baseline %d", k, label, n, want[k])
		}
	}
}

// testInstance bundles one in-process cluster member.
type testInstance struct {
	inst *Instance
	srv  *httptest.Server
	wait func() []stream.Alert
	down atomic.Bool // simulates a partition: every endpoint 503s
}

func newTestInstance(t *testing.T, name, dir string, depth int) *testInstance {
	t.Helper()
	s, err := stream.New(freshPipeline(t), equivOpts(depth, dir)...)
	if err != nil {
		t.Fatal(err)
	}
	ti := &testInstance{wait: collectAlerts(s)}
	ti.inst = NewInstance(name, s, nil)
	inner := ti.inst.Handler()
	ti.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ti.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	return ti
}

// TestKillOneInstanceEquivalence is the acceptance test of the PR: a
// 3-instance cluster where one instance is SIGKILLed mid-run (its
// process state vanishes; only its state directory survives) must
// deliver exactly the alert multiset of one uninterrupted
// single-process run. The router ejects the dead peer, survivors
// rebuild its ranges from the directory (snapshot + WAL tail through
// the recovery path), spilled lines redeliver, and the shipped dedup
// rings absorb the redelivery duplicates.
func TestKillOneInstanceEquivalence(t *testing.T) {
	lines, maxPerNode := equivLines(t, 211)
	depth := maxPerNode + 16
	want := baselineMultiset(t, lines, depth)

	shared := t.TempDir()
	names := []string{"i0", "i1", "i2"}
	instances := make([]*testInstance, len(names))
	peers := make([]Peer, len(names))
	for i, name := range names {
		dir := shared + "/" + name
		instances[i] = newTestInstance(t, name, dir, depth)
		peers[i] = Peer{Name: name, URL: instances[i].srv.URL, Dir: dir}
	}
	r, err := NewRouter(fastRouterConfig(peers, shared+"/spill"))
	if err != nil {
		t.Fatal(err)
	}

	cut := 2 * len(lines) / 5
	for _, line := range lines[:cut] {
		if err := r.IngestLine(line); err != nil {
			t.Fatal(err)
		}
	}
	// SIGKILL instance 1: the streamer dies where it stands (no drain,
	// no final snapshot) and its HTTP listener vanishes.
	victim := instances[1]
	victim.inst.Streamer().Kill()
	victim.srv.Close()
	for _, line := range lines[cut:] {
		if err := r.IngestLine(line); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "victim ejection", func() bool {
		return r.Metrics().PeerUnhealthy == 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	m := r.Metrics()
	if m.TakeoverErrors != 0 {
		t.Fatalf("takeover errors: %d", m.TakeoverErrors)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	var got []stream.Alert
	got = append(got, victim.wait()...) // channel closed by Kill
	imports := int64(0)
	for i, ti := range instances {
		if i == 1 {
			continue
		}
		if err := ti.inst.Streamer().Close(); err != nil {
			t.Fatal(err)
		}
		got = append(got, ti.wait()...)
		imports += ti.inst.Streamer().SnapshotMetrics().HandoffImports
		ti.srv.Close()
	}
	if imports == 0 {
		t.Fatal("no survivor imported the dead instance's ranges")
	}
	compareMultisets(t, "kill-one-instance cluster", alertMultiset(got), want)
}

// TestEjectReadmitHandoffEquivalence: a temporary outage — the
// instance stays alive but fails health checks — must also be
// lossless. The router ejects it (survivor rebuilds its ranges from
// the shared state directory), serves through the outage, then on
// probation readmission migrates the ranges back via a live journaled
// handoff. The final alert multiset must equal the undisturbed
// baseline.
func TestEjectReadmitHandoffEquivalence(t *testing.T) {
	lines, maxPerNode := equivLines(t, 212)
	depth := maxPerNode + 16
	want := baselineMultiset(t, lines, depth)

	shared := t.TempDir()
	names := []string{"a", "b"}
	instances := make([]*testInstance, len(names))
	peers := make([]Peer, len(names))
	for i, name := range names {
		dir := shared + "/" + name
		instances[i] = newTestInstance(t, name, dir, depth)
		peers[i] = Peer{Name: name, URL: instances[i].srv.URL, Dir: dir}
	}
	r, err := NewRouter(fastRouterConfig(peers, shared+"/spill"))
	if err != nil {
		t.Fatal(err)
	}

	third := len(lines) / 3
	for _, line := range lines[:third] {
		if err := r.IngestLine(line); err != nil {
			t.Fatal(err)
		}
	}
	// Drain every in-flight line before the outage: a batch that landed
	// on "a" after the survivor's takeover read of its directory would
	// exist only in "a"'s stale state, which the readmission handoff
	// later replaces.
	flushCtx, flushCancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := r.Flush(flushCtx); err != nil {
		flushCancel()
		t.Fatalf("pre-outage flush: %v", err)
	}
	flushCancel()
	// Outage: instance "a" partitions away. Feeding pauses until the
	// ejection (and its dir takeover) completes so the takeover reads a
	// quiescent WAL.
	instances[0].down.Store(true)
	waitFor(t, 15*time.Second, "ejection", func() bool {
		return r.Metrics().PeerUnhealthy == 1
	})
	if m := r.Metrics(); m.TakeoverErrors != 0 {
		t.Fatalf("takeover errors: %d", m.TakeoverErrors)
	}
	for _, line := range lines[third : 2*third] {
		if err := r.IngestLine(line); err != nil {
			t.Fatal(err)
		}
	}
	// Recovery: probation, readmission, live handoff back.
	instances[0].down.Store(false)
	waitFor(t, 15*time.Second, "readmission", func() bool {
		return r.Metrics().Readmits == 1
	})
	if m := r.Metrics(); m.HandoffErrors != 0 {
		t.Fatalf("handoff errors: %d", m.HandoffErrors)
	}
	for _, line := range lines[2*third:] {
		if err := r.IngestLine(line); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	var got []stream.Alert
	handoffs := int64(0)
	for _, ti := range instances {
		snap := ti.inst.Streamer().SnapshotMetrics()
		handoffs += snap.HandoffsCompleted
		if err := ti.inst.Streamer().Close(); err != nil {
			t.Fatal(err)
		}
		got = append(got, ti.wait()...)
		ti.srv.Close()
	}
	if handoffs == 0 {
		t.Fatal("readmission completed no live handoff")
	}
	compareMultisets(t, "eject-readmit cluster", alertMultiset(got), want)
}
