package cluster

import (
	"strings"
	"testing"
	"time"

	"desh/internal/persist"
)

func electCfg(name string, peers []Peer, spill string) RouterConfig {
	cfg := fastRouterConfig(peers, spill)
	cfg.Name = name
	cfg.LeaseTTL = 300 * time.Millisecond
	cfg.ElectionInterval = 30 * time.Millisecond
	return cfg
}

// assertOwnershipPartition checks that the instances' durable
// ownership at the cluster's newest epoch is a partition of the hash
// circle: every sampled point owned by exactly one instance.
func assertOwnershipPartition(t *testing.T, label string, instances []*testInstance) {
	t.Helper()
	newest := uint64(0)
	for _, ti := range instances {
		if e, _ := ti.inst.Ownership(); e > newest {
			newest = e
		}
	}
	for probe := 0; probe < 4096; probe++ {
		h := uint32(probe) * 1048573 // spread samples over the circle
		owners := 0
		for _, ti := range instances {
			e, ranges := ti.inst.Ownership()
			if e == newest && persist.RangesContain(ranges, h) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("%s: hash %d has %d owners at epoch %d (want exactly 1)", label, h, owners, newest)
		}
	}
}

// TestCoordinatorElectionLowestWins: with two routers polling the same
// fleet, the lexically-lowest becomes the single coordinator; when it
// shuts down gracefully (lease release), the survivor takes over.
func TestCoordinatorElectionLowestWins(t *testing.T) {
	shared := t.TempDir()
	names := []string{"i0", "i1", "i2"}
	instances := make([]*testInstance, len(names))
	peers := make([]Peer, len(names))
	for i, name := range names {
		dir := shared + "/" + name
		instances[i] = newTestInstance(t, name, dir, 64)
		peers[i] = Peer{Name: name, URL: instances[i].srv.URL, Dir: dir}
	}
	r0, err := NewRouter(electCfg("r0", peers, shared+"/spill0"))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRouter(electCfg("r1", peers, shared+"/spill1"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "r0 to win the election", func() bool {
		return r0.IsCoordinator() && !r1.IsCoordinator()
	})
	if got := r1.Metrics(); got.Coordinator {
		t.Fatal("r1 reports coordinator in metrics")
	}
	// Graceful shutdown releases the leases; r1 must take over without
	// waiting out the TTL×candidate-expiry window.
	if err := r0.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "r1 to take over", func() bool {
		return r1.IsCoordinator()
	})
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ti := range instances {
		if err := ti.inst.Streamer().Close(); err != nil {
			t.Fatal(err)
		}
		ti.wait()
		ti.srv.Close()
	}
}

// TestRebalanceRequiresCoordinator: an administrative rebalance posted
// to a non-coordinator router is refused.
func TestRebalanceRequiresCoordinator(t *testing.T) {
	shared := t.TempDir()
	ti := newTestInstance(t, "i0", shared+"/i0", 64)
	peers := []Peer{{Name: "i0", URL: ti.srv.URL, Dir: shared + "/i0"}}
	r0, err := NewRouter(electCfg("r0", peers, shared+"/spill0"))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRouter(electCfg("r1", peers, shared+"/spill1"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "r0 to win the election", func() bool {
		return r0.IsCoordinator() && !r1.IsCoordinator()
	})
	err = r1.StartRebalance(RebalanceRequest{Action: "drain", Name: "i0"})
	if err == nil || !strings.Contains(err.Error(), "not the coordinator") {
		t.Fatalf("non-coordinator rebalance: got %v, want a not-the-coordinator refusal", err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ti.inst.Streamer().Close(); err != nil {
		t.Fatal(err)
	}
	ti.wait()
	ti.srv.Close()
}

// TestRebalanceAddThenDrain drives the planned membership protocol
// end to end on one router: grow the ring with a live member, then
// drain another out gracefully. After each step the fleet's durable
// ownership must partition the hash circle at the new epoch.
func TestRebalanceAddThenDrain(t *testing.T) {
	shared := t.TempDir()
	names := []string{"i0", "i1"}
	instances := make([]*testInstance, 0, 3)
	peers := make([]Peer, len(names))
	for i, name := range names {
		dir := shared + "/" + name
		ti := newTestInstance(t, name, dir, 64)
		instances = append(instances, ti)
		peers[i] = Peer{Name: name, URL: ti.srv.URL, Dir: dir}
	}
	r, err := NewRouter(fastRouterConfig(peers, shared+"/spill"))
	if err != nil {
		t.Fatal(err)
	}
	waitRebalance := func(action string) RebalanceStatus {
		t.Helper()
		var st RebalanceStatus
		waitFor(t, 15*time.Second, action+" to finish", func() bool {
			st = r.RebalanceStatus()
			return !st.Active
		})
		if st.Error != "" {
			t.Fatalf("%s failed at step %q: %s", action, st.Step, st.Error)
		}
		return st
	}

	// Grow: i2 joins and receives its ring share via live handoffs.
	i2dir := shared + "/i2"
	i2 := newTestInstance(t, "i2", i2dir, 64)
	instances = append(instances, i2)
	if err := r.StartRebalance(RebalanceRequest{Action: "add", Name: "i2", URL: i2.srv.URL, Dir: i2dir}); err != nil {
		t.Fatal(err)
	}
	waitRebalance("add")
	view := r.View()
	if len(view.Members) != 3 || view.Epoch != 2 {
		t.Fatalf("after add: view epoch %d with %d members, want epoch 2 with 3", view.Epoch, len(view.Members))
	}
	if _, ranges := i2.inst.Ownership(); len(ranges) == 0 {
		t.Fatal("after add: newcomer owns nothing")
	}
	assertOwnershipPartition(t, "after add", instances)

	// A second rebalance while one is running is refused.
	if err := r.StartRebalance(RebalanceRequest{Action: "drain", Name: "i0"}); err != nil {
		t.Fatal(err)
	}
	if err := r.StartRebalance(RebalanceRequest{Action: "drain", Name: "i1"}); err == nil {
		st := r.RebalanceStatus()
		if st.Active {
			t.Fatal("concurrent rebalance accepted")
		}
	}
	waitRebalance("drain")
	view = r.View()
	if len(view.Members) != 2 {
		t.Fatalf("after drain: %d members, want 2", len(view.Members))
	}
	if _, ok := view.Member("i0"); ok {
		t.Fatal("after drain: i0 still in the view")
	}
	if _, ranges := instances[0].inst.Ownership(); len(ranges) != 0 {
		t.Fatalf("after drain: i0 still owns %d ranges", len(ranges))
	}
	if out := instances[0].inst.Streamer().SnapshotMetrics().HandoffsCompleted; out == 0 {
		t.Fatal("drain completed no live handoffs from i0")
	}
	assertOwnershipPartition(t, "after drain", instances[1:])

	// Unknown members and bad actions are refused up front.
	if err := r.StartRebalance(RebalanceRequest{Action: "drain", Name: "ghost"}); err != nil {
		t.Fatal(err) // accepted: the member check runs in the background step
	}
	waitFor(t, 15*time.Second, "ghost drain to fail", func() bool {
		st := r.RebalanceStatus()
		return !st.Active
	})
	if st := r.RebalanceStatus(); st.Error == "" || !strings.Contains(st.Error, "unknown member") {
		t.Fatalf("ghost drain: status %+v, want an unknown-member error", st)
	}
	if err := r.StartRebalance(RebalanceRequest{Action: "shuffle", Name: "i1"}); err == nil {
		t.Fatal("bogus action accepted")
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ti := range instances {
		if err := ti.inst.Streamer().Close(); err != nil {
			t.Fatal(err)
		}
		ti.wait()
		ti.srv.Close()
	}
}
