package cluster

import (
	"fmt"
	"testing"

	"desh/internal/persist"
)

// sampleHashes is a deterministic spread of probe points, including
// the circle's edges.
func sampleHashes() []uint32 {
	hs := []uint32{0, 1, 0x7fffffff, 0xfffffffe, 0xffffffff}
	for i := 0; i < 2000; i++ {
		hs = append(hs, persist.NodeHash(fmt.Sprintf("probe-%d", i)))
	}
	return hs
}

func TestRingDeterministicBuilds(t *testing.T) {
	a := NewRing([]string{"c", "a", "b"}, 64)
	b := NewRing([]string{"b", "b", "a", "c"}, 64)
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.points[i], b.points[i])
		}
	}
	for _, h := range sampleHashes() {
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("owner of %#x differs", h)
		}
	}
}

// TestRingOwnerMatchesRanges: for every probe hash, the member Owner
// returns must be exactly the one whose Ranges contain the hash, and
// the members' ranges must partition the circle.
func TestRingOwnerMatchesRanges(t *testing.T) {
	members := []string{"alpha", "beta", "gamma", "delta"}
	r := NewRing(members, 64)
	ranges := make(map[string][]persist.HashRange, len(members))
	for _, m := range members {
		ranges[m] = r.Ranges(m)
	}
	for _, h := range sampleHashes() {
		owner := r.Owner(h)
		holders := 0
		for _, m := range members {
			if persist.RangesContain(ranges[m], h) {
				holders++
				if m != owner {
					t.Fatalf("hash %#x: Owner says %s, but %s's ranges contain it", h, owner, m)
				}
			}
		}
		if holders != 1 {
			t.Fatalf("hash %#x held by %d members, want exactly 1", h, holders)
		}
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := NewRing([]string{"solo"}, 8)
	got := r.Ranges("solo")
	if len(got) != 1 || got[0] != (persist.HashRange{Lo: 0, Hi: 0}) {
		t.Fatalf("single member ranges %v, want full circle {0 0}", got)
	}
	for _, h := range sampleHashes() {
		if r.Owner(h) != "solo" {
			t.Fatalf("hash %#x not owned by the only member", h)
		}
	}
	if NewRing(nil, 8).Owner(42) != "" {
		t.Fatal("empty ring must own nothing")
	}
}

// TestRingRemovalMovesOnlyDeadRanges is the consistent-hashing
// contract: removing one member must not move any hash between two
// surviving members.
func TestRingRemovalMovesOnlyDeadRanges(t *testing.T) {
	before := NewRing([]string{"a", "b", "c"}, 64)
	after := NewRing([]string{"a", "b"}, 64)
	moved := 0
	for _, h := range sampleHashes() {
		ob, oa := before.Owner(h), after.Owner(h)
		if ob == "c" {
			moved++
			continue // dead member's hashes may land anywhere
		}
		if ob != oa {
			t.Fatalf("hash %#x moved %s -> %s though %s survives", h, ob, oa, ob)
		}
	}
	if moved == 0 {
		t.Fatal("no probe hash was owned by the removed member; probe set too small")
	}
}

// TestIntersectMembership: point-membership in Intersect(a, b) must
// equal membership in both inputs, across wrap-around and full-circle
// encodings.
func TestIntersectMembership(t *testing.T) {
	cases := [][2][]persist.HashRange{
		{{{Lo: 100, Hi: 200}}, {{Lo: 150, Hi: 250}}},
		{{{Lo: 0, Hi: 0}}, {{Lo: 150, Hi: 250}}},
		{{{Lo: 0xfffffff0, Hi: 16}}, {{Lo: 8, Hi: 0xfffffff8}}},
		{{{Lo: 0xfffffff0, Hi: 16}}, {{Lo: 0xfffffff8, Hi: 8}}},
		{{{Lo: 100, Hi: 200}, {Lo: 300, Hi: 400}}, {{Lo: 150, Hi: 350}}},
		{{{Lo: 100, Hi: 200}}, {{Lo: 200, Hi: 300}}},
	}
	probes := sampleHashes()
	for _, lo := range []uint32{0, 7, 8, 15, 16, 99, 100, 150, 199, 200, 250, 299, 300, 350, 399, 400, 0xffffffef, 0xfffffff0, 0xfffffff7, 0xfffffff8, 0xffffffff} {
		probes = append(probes, lo)
	}
	for ci, c := range cases {
		got := Intersect(c[0], c[1])
		for _, h := range probes {
			want := persist.RangesContain(c[0], h) && persist.RangesContain(c[1], h)
			if have := persist.RangesContain(got, h); have != want {
				t.Fatalf("case %d hash %#x: intersect membership %v, want %v (got %v)", ci, h, have, want, got)
			}
		}
	}
}

// TestSubtractMembership: membership in subtractRanges(base, cut) must
// equal (in base) && !(in cut).
func TestSubtractMembership(t *testing.T) {
	cases := [][2][]persist.HashRange{
		{{{Lo: 0, Hi: 0}}, {{Lo: 100, Hi: 200}}},
		{{{Lo: 100, Hi: 200}}, {{Lo: 100, Hi: 200}}},
		{{{Lo: 100, Hi: 300}}, {{Lo: 150, Hi: 250}}},
		{{{Lo: 0xfffffff0, Hi: 16}}, {{Lo: 0, Hi: 8}}},
		{{{Lo: 0, Hi: 0}}, {{Lo: 0xfffffff0, Hi: 16}}},
		{{{Lo: 100, Hi: 200}, {Lo: 300, Hi: 400}}, {{Lo: 150, Hi: 350}}},
	}
	probes := sampleHashes()
	for _, lo := range []uint32{0, 7, 8, 15, 16, 99, 100, 150, 199, 200, 249, 250, 300, 350, 399, 400, 0xffffffef, 0xfffffff0, 0xffffffff} {
		probes = append(probes, lo)
	}
	for ci, c := range cases {
		got := subtractRanges(c[0], c[1])
		for _, h := range probes {
			want := persist.RangesContain(c[0], h) && !persist.RangesContain(c[1], h)
			if have := persist.RangesContain(got, h); have != want {
				t.Fatalf("case %d hash %#x: subtract membership %v, want %v (got %v)", ci, h, have, want, got)
			}
		}
	}
}

// TestHandoffMovesExactlyTheGainedRanges: across a readmission, the
// intersection of an old owner's ranges with the rejoining member's
// new ranges must be exactly the hashes that changed hands between the
// two.
func TestHandoffMovesExactlyTheGainedRanges(t *testing.T) {
	old := NewRing([]string{"a", "b"}, 64)
	cur := NewRing([]string{"a", "b", "c"}, 64)
	moved := Intersect(old.Ranges("a"), cur.Ranges("c"))
	for _, h := range sampleHashes() {
		want := old.Owner(h) == "a" && cur.Owner(h) == "c"
		if got := persist.RangesContain(moved, h); got != want {
			t.Fatalf("hash %#x: moved-set membership %v, want %v", h, got, want)
		}
	}
}
