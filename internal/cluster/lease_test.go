package cluster

import (
	"strings"
	"testing"
	"time"

	"desh/internal/persist"
	"desh/internal/stream"
)

func newLeaseInstance(t *testing.T, dir string) *Instance {
	t.Helper()
	s, err := stream.New(freshPipeline(t), equivOpts(64, dir)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = s.Close()
		for range s.Alerts() {
		}
	})
	return NewInstance("i0", s, nil)
}

// TestLeaseLowestNameWins: the grant rule end to end — a higher-named
// router can hold the lease only until a lower-named one shows up,
// then renewal is refused and the lease moves at expiry with a
// fencing-generation bump.
func TestLeaseLowestNameWins(t *testing.T) {
	inst := newLeaseInstance(t, "")
	const ttlMs = 80

	// rb polls first on a vacant lease: it is the only live candidate,
	// so it gets the grant at gen 1.
	rep, err := inst.Lease(leaseRequest{Name: "rb", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Granted || rep.Holder != "rb" || rep.Gen != 1 {
		t.Fatalf("first poll: %+v, want granted to rb at gen 1", rep)
	}

	// ra appears: lower name, but rb's lease is unexpired — ra must not
	// preempt.
	rep, err = inst.Lease(leaseRequest{Name: "ra", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Granted || rep.Holder != "rb" {
		t.Fatalf("ra poll against live rb lease: %+v, want refused, holder rb", rep)
	}

	// rb's renewal is refused (without clearing the lease): the signal
	// to step down gracefully.
	rep, err = inst.Lease(leaseRequest{Name: "rb", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Granted || rep.Holder != "rb" || rep.Gen != 1 {
		t.Fatalf("rb renewal with ra live: %+v, want refused but still holder rb gen 1", rep)
	}

	// After expiry the lease moves to ra with a generation bump.
	time.Sleep(2 * ttlMs * time.Millisecond)
	rep, err = inst.Lease(leaseRequest{Name: "ra", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Granted || rep.Holder != "ra" || rep.Gen != 2 {
		t.Fatalf("ra poll after expiry: %+v, want granted to ra at gen 2", rep)
	}

	// rb is now fenced at gen 1.
	if err := inst.fence(1); err == nil {
		t.Fatal("gen 1 must be fenced after the lease moved to gen 2")
	}
	if err := inst.fence(2); err != nil {
		t.Fatalf("current gen fenced: %v", err)
	}
	if err := inst.fence(0); err != nil {
		t.Fatalf("gen 0 (election off) fenced: %v", err)
	}
}

// TestLeaseVacantWaitsForLowest: with both candidates known, a vacant
// lease is granted only to the lowest — a higher-named poll arriving
// first must not squat.
func TestLeaseVacantWaitsForLowest(t *testing.T) {
	inst := newLeaseInstance(t, "")
	const ttlMs = 80
	// Both become candidates while rb briefly holds.
	if _, err := inst.Lease(leaseRequest{Name: "rb", TTLMillis: ttlMs}); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Lease(leaseRequest{Name: "ra", TTLMillis: ttlMs}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * ttlMs * time.Millisecond)
	// Vacant now; rb polls first but ra is a live candidate → refused.
	rep, err := inst.Lease(leaseRequest{Name: "rb", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Granted {
		t.Fatalf("rb granted a vacant lease while lower-named ra is live: %+v", rep)
	}
	rep, err = inst.Lease(leaseRequest{Name: "ra", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Granted || rep.Holder != "ra" {
		t.Fatalf("ra poll on vacant lease: %+v, want granted", rep)
	}
}

// TestLeaseReleaseAndCandidateExpiry: a voluntary release vacates the
// lease immediately (keeping the generation), and a candidate that
// stops polling ages out so the survivor can win a vacant lease.
func TestLeaseReleaseAndCandidateExpiry(t *testing.T) {
	inst := newLeaseInstance(t, "")
	const ttlMs = 60
	if _, err := inst.Lease(leaseRequest{Name: "ra", TTLMillis: ttlMs}); err != nil {
		t.Fatal(err)
	}
	rep, err := inst.Lease(leaseRequest{Name: "ra", TTLMillis: ttlMs, Release: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holder != "" || rep.Gen != 1 {
		t.Fatalf("after release: %+v, want vacant holder, gen preserved at 1", rep)
	}
	// rb can't win while ra is still a live candidate... but ra released
	// and was dropped from the candidate set, so rb is now lowest.
	rep, err = inst.Lease(leaseRequest{Name: "rb", TTLMillis: ttlMs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Granted || rep.Holder != "rb" || rep.Gen != 2 {
		t.Fatalf("rb poll after ra released: %+v, want granted at gen 2", rep)
	}
}

// TestLeaseRecoveryKeepsFencing: the generation survives a crash, so
// a coordinator fenced before the crash stays fenced after it.
func TestLeaseRecoveryKeepsFencing(t *testing.T) {
	dir := t.TempDir()
	s, err := stream.New(freshPipeline(t), equivOpts(64, dir)...)
	if err != nil {
		t.Fatal(err)
	}
	drain := collectAlerts(s)
	inst := NewInstance("i0", s, nil)
	if _, err := inst.Lease(leaseRequest{Name: "rb", TTLMillis: 50}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	rep, err := inst.Lease(leaseRequest{Name: "ra", TTLMillis: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Granted || rep.Gen != 2 {
		t.Fatalf("ra takeover: %+v, want gen 2", rep)
	}
	s.Kill()
	drain()

	s2, err := stream.New(freshPipeline(t), equivOpts(64, dir)...)
	if err != nil {
		t.Fatal(err)
	}
	drain2 := collectAlerts(s2)
	inst2 := NewInstance("i0", s2, nil)
	if err := inst2.fence(1); err == nil {
		t.Fatal("pre-crash fenced generation must stay fenced after recovery")
	}
	if err := inst2.fence(2); err != nil {
		t.Fatalf("current generation fenced after recovery: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	drain2()
}

// TestViewInstallAndFencing: view installs are epoch-monotonic and
// fenced; the installed view rides lease replies so non-coordinator
// routers converge.
func TestViewInstallAndFencing(t *testing.T) {
	inst := newLeaseInstance(t, "")
	v1 := persist.ViewRecord{Epoch: 2, Members: []persist.ViewMember{
		{Name: "a", URL: "http://a", State: persist.StateIn},
		{Name: "b", URL: "http://b", State: persist.StateDraining},
	}}
	if err := inst.InstallView(viewRequest{View: v1}); err != nil {
		t.Fatal(err)
	}
	// Same epoch re-push: idempotent. Older: rejected.
	if err := inst.InstallView(viewRequest{View: v1}); err != nil {
		t.Fatalf("idempotent re-push: %v", err)
	}
	old := persist.ViewRecord{Epoch: 1, Members: v1.Members}
	if err := inst.InstallView(viewRequest{View: old}); err == nil || !strings.Contains(err.Error(), "stale view") {
		t.Fatalf("stale view install: %v, want stale-view rejection", err)
	}
	got, ok := inst.View()
	if !ok || got.Epoch != 2 || len(got.Members) != 2 {
		t.Fatalf("View() = %+v ok=%v", got, ok)
	}
	rep, err := inst.Lease(leaseRequest{Name: "ra", TTLMillis: 80})
	if err != nil {
		t.Fatal(err)
	}
	if rep.View == nil || rep.View.Epoch != 2 {
		t.Fatalf("lease reply view = %+v, want the installed epoch-2 view", rep.View)
	}
	// A stale coordinator (gen below the lease's) cannot install views;
	// gen 0 (election off) always passes. Move the lease once so a
	// genuinely stale generation exists.
	if err := inst.InstallView(viewRequest{Gen: 0, View: persist.ViewRecord{Epoch: 3, Members: v1.Members}}); err != nil {
		t.Fatalf("unfenced (gen 0) install: %v", err)
	}
	if _, err := inst.Lease(leaseRequest{Name: "ra", TTLMillis: 80, Release: true}); err != nil {
		t.Fatal(err)
	}
	rep2, err := inst.Lease(leaseRequest{Name: "rb", TTLMillis: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Granted || rep2.Gen != rep.Gen+1 {
		t.Fatalf("rb takeover after release: %+v, want gen %d", rep2, rep.Gen+1)
	}
	bad := viewRequest{Gen: rep.Gen, View: persist.ViewRecord{Epoch: 4, Members: v1.Members}}
	if err := inst.InstallView(bad); err == nil {
		t.Fatal("stale-generation view install must be fenced")
	}
}
