package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"desh/internal/persist"
	"desh/internal/persist/faultfs"
	"desh/internal/retry"
)

// ErrRouterClosed is returned by ingest entry points after Close.
var ErrRouterClosed = errors.New("cluster: router is closed")

// Peer describes one cluster instance the router fronts.
type Peer struct {
	// Name is the stable member name (ring placement hashes it).
	Name string
	// URL is the instance's HTTP base, e.g. "http://10.0.0.7:8080".
	URL string
	// Dir is the instance's state directory on the shared filesystem —
	// the takeover source if the instance dies (empty disables
	// takeover for this peer).
	Dir string
}

// RouterConfig tunes a Router. Zero fields take the documented
// defaults.
type RouterConfig struct {
	// Peers is the initial membership (at least one required).
	Peers []Peer
	// Vnodes is the virtual-node count per member (default 64).
	Vnodes int
	// SpillDir is the router's local WAL for events it cannot deliver
	// right now — owner unreachable, range frozen mid-handoff, sender
	// backlogged. Spilled lines redeliver in order once the owner
	// recovers; the WAL bounds memory while losing nothing. Required.
	SpillDir string
	// HealthInterval is the per-peer probe period (default 250ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 1s).
	HealthTimeout time.Duration
	// FailThreshold consecutive probe failures eject a peer from the
	// ring (default 3).
	FailThreshold int
	// ReadmitThreshold consecutive probe successes readmit an ejected
	// peer — probation, so a flapping peer does not thrash the ring
	// (default 3).
	ReadmitThreshold int
	// DrainInterval is the spill-WAL redelivery period (default 250ms).
	DrainInterval time.Duration
	// Retry is the per-batch forward backoff (default: 10ms base, 1s
	// cap, 4 attempts).
	Retry retry.Policy
	// BatchMax caps lines per forwarded POST (default 256).
	BatchMax int
	// SendQueue bounds each peer's in-memory sender queue; overflow
	// spills (default 4096).
	SendQueue int
	// Diag, when set, receives one-line operational diagnostics.
	Diag func(format string, args ...any)

	// Name identifies this router in the coordinator election. Empty
	// disables election entirely: the router always coordinates —
	// the single-router deployment, unchanged from before replication.
	Name string
	// LeaseTTL is the coordinator lease duration granted by each
	// instance (default 2s). Shorter means faster failover; the lease
	// renews every ElectionInterval.
	LeaseTTL time.Duration
	// ElectionInterval is the lease poll period (default LeaseTTL/3).
	ElectionInterval time.Duration
	// Transport overrides the HTTP transport for every client the
	// router builds — the fault-injection seam the chaos harness uses
	// to partition a router from a subset of peers.
	Transport http.RoundTripper
	// HookRebalanceStep, when set, runs synchronously at each named
	// step boundary of a planned rebalance (and of a converge-driven
	// resume) — the chaos seam for killing a coordinator mid-protocol.
	HookRebalanceStep func(step string)
}

// RouterMetrics is the router's own counter registry.
type RouterMetrics struct {
	// Forwarded counts lines accepted by an owner; ForwardErrors counts
	// batches that exhausted their retries.
	Forwarded     atomic.Int64
	ForwardErrors atomic.Int64
	// Malformed counts lines the router could not parse a node from.
	Malformed atomic.Int64
	// Spilled counts lines written to the spill WAL; Drained counts
	// lines redelivered from it; SpillErrors counts spill appends or
	// replays that failed.
	Spilled     atomic.Int64
	Drained     atomic.Int64
	SpillErrors atomic.Int64
	// RejectedLines counts lines an instance bounced (not owned or
	// frozen); each bounce respills for redelivery.
	RejectedLines atomic.Int64
	// PeerUnhealthy counts ejections; Readmits counts probation
	// re-admissions; Rebalances counts both kinds of ring change.
	PeerUnhealthy atomic.Int64
	Readmits      atomic.Int64
	Rebalances    atomic.Int64
	// HandoffErrors / TakeoverErrors count failed migration calls
	// during a rebalance (the affected ranges serve cold).
	HandoffErrors  atomic.Int64
	TakeoverErrors atomic.Int64
	// Elections counts transitions into the coordinator role.
	Elections atomic.Int64
}

// RouterMetricsSnapshot is the JSON view of RouterMetrics plus the
// current epoch.
type RouterMetricsSnapshot struct {
	Epoch          uint64 `json:"cluster_epoch"`
	Forwarded      int64  `json:"forwarded"`
	ForwardErrors  int64  `json:"forward_errors"`
	Malformed      int64  `json:"malformed"`
	Spilled        int64  `json:"spilled"`
	Drained        int64  `json:"drained"`
	SpillErrors    int64  `json:"spill_errors"`
	RejectedLines  int64  `json:"rejected_lines"`
	PeerUnhealthy  int64  `json:"peer_unhealthy"`
	Readmits       int64  `json:"readmits"`
	Rebalances     int64  `json:"rebalances"`
	HandoffErrors  int64  `json:"handoff_errors"`
	TakeoverErrors int64  `json:"takeover_errors"`
	Coordinator    bool   `json:"coordinator"`
	Elections      int64  `json:"elections"`
}

type peerState struct {
	Peer
	ch       chan string
	healthy  atomic.Bool
	inflight atomic.Int64
	// stop ends this peer's sender/health goroutines when the member
	// leaves the cluster view (the router itself keeps running).
	stop chan struct{}
	// leaseGen is the newest fencing generation this peer reported in
	// a lease reply; control posts to the peer are stamped with it.
	leaseGen atomic.Uint64
	// fails / oks are consecutive probe counts, touched only by the
	// peer's health goroutine.
	fails int
	oks   int
	// inRing is guarded by Router.mu.
	inRing bool
}

// Router is the fault-tolerant ingest tier: it parses incoming lines,
// routes each to its node's owner on the consistent-hash ring, and
// keeps the cluster converged — per-peer health probing with
// failure-threshold ejection and probation readmission, takeover
// orchestration for dead peers, live handoffs for readmitted ones,
// and a spill WAL so no event is lost while any of that is happening.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	// leaseClient is the short-timeout client for lease polls: one
	// unresponsive instance must never stall the election round past
	// the TTL.
	leaseClient *http.Client
	fsys        faultfs.FS

	mu    sync.RWMutex // ring, epoch, view, peer ring-membership
	ring  *Ring
	epoch uint64
	view  persist.ViewRecord
	peers map[string]*peerState

	// Coordinator election (see coordinator.go). election is fixed at
	// construction; coordinator flips with quorum lease grants; killed
	// marks a simulated SIGKILL so shutdown skips the graceful lease
	// release.
	election    bool
	coordinator atomic.Bool
	killed      atomic.Bool

	// rebalStMu guards rebalSt, the progress report of the running (or
	// last) administrative rebalance.
	rebalStMu sync.Mutex
	rebalSt   RebalanceStatus

	// rebalMu serializes eject/readmit orchestration end to end.
	rebalMu sync.Mutex

	// drainMu serializes whole drain passes (drainLoop vs Flush): a
	// second rotation while the first pass is still re-routing would
	// replay the not-yet-truncated records again and double-deliver.
	drainMu sync.Mutex

	spillMu sync.Mutex
	spill   *persist.WAL
	spillN  int64 // records appended since the last drain rotation

	met    RouterMetrics
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	closeMu sync.Mutex
	closed  bool
}

// NewRouter builds and starts a router: the spill WAL is opened (and
// any records left by a previous run queued for redelivery), sender,
// health and drain goroutines start, and ownership at epoch 1 is
// pushed to every peer.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one peer")
	}
	if cfg.SpillDir == "" {
		return nil, fmt.Errorf("cluster: router needs a spill dir")
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = defaultVnodes
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ReadmitThreshold <= 0 {
		cfg.ReadmitThreshold = 3
	}
	if cfg.DrainInterval <= 0 {
		cfg.DrainInterval = 250 * time.Millisecond
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry.Attempts = 4
	}
	if cfg.Retry.MaxElapsed <= 0 {
		cfg.Retry.MaxElapsed = 15 * time.Second
	}
	if cfg.Name != "" {
		if cfg.LeaseTTL <= 0 {
			cfg.LeaseTTL = 2 * time.Second
		}
		if cfg.ElectionInterval <= 0 {
			cfg.ElectionInterval = cfg.LeaseTTL / 3
		}
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 256
	}
	if cfg.SendQueue <= 0 {
		cfg.SendQueue = 4096
	}
	fsys := faultfs.OS()
	if err := fsys.MkdirAll(cfg.SpillDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: spill dir: %w", err)
	}
	// A previous run's spill segments redeliver on the first drain; the
	// scan also finds where the WAL sequence left off.
	stats, err := persist.ReplayWAL(fsys, cfg.SpillDir, 0, func(uint64, []byte) error { return nil })
	if err != nil {
		return nil, fmt.Errorf("cluster: spill scan: %w", err)
	}
	if err := persist.RepairTail(fsys, cfg.SpillDir, stats); err != nil {
		return nil, fmt.Errorf("cluster: spill repair: %w", err)
	}
	spill, err := persist.OpenWAL(fsys, cfg.SpillDir, stats.NextSeq, 1, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: spill wal: %w", err)
	}
	names := make([]string, 0, len(cfg.Peers))
	members := make([]persist.ViewMember, 0, len(cfg.Peers))
	peers := make(map[string]*peerState, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if _, dup := peers[p.Name]; dup {
			spill.Close()
			return nil, fmt.Errorf("cluster: duplicate peer name %q", p.Name)
		}
		ps := &peerState{Peer: p, ch: make(chan string, cfg.SendQueue), stop: make(chan struct{}), inRing: true}
		ps.healthy.Store(true)
		peers[p.Name] = ps
		names = append(names, p.Name)
		members = append(members, persist.ViewMember{Name: p.Name, URL: p.URL, Dir: p.Dir, State: persist.StateIn})
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:         cfg,
		client:      &http.Client{Timeout: 30 * time.Second, Transport: cfg.Transport},
		leaseClient: &http.Client{Timeout: cfg.HealthTimeout, Transport: cfg.Transport},
		fsys:        fsys,
		ring:        NewRing(names, cfg.Vnodes),
		epoch:       1,
		view:        persist.ViewRecord{Epoch: 1, Members: members},
		peers:       peers,
		election:    cfg.Name != "",
		spill:       spill,
		ctx:         ctx,
		cancel:      cancel,
	}
	if stats.Records > 0 {
		r.spillMu.Lock()
		r.spillN = int64(stats.Records)
		r.spillMu.Unlock()
	}
	if r.election {
		// Replicated deployment: ownership and views converge through the
		// elected coordinator, never through every router's boot — two
		// routers pushing epoch 1 concurrently would be two authorities.
		r.wg.Add(1)
		go r.electLoop()
	} else {
		r.coordinator.Store(true)
		r.pushOwnership(1, r.ring, names)
	}
	for _, ps := range peers {
		r.startPeer(ps)
	}
	r.wg.Add(1)
	go r.drainLoop()
	return r, nil
}

func (r *Router) diagf(format string, args ...any) {
	if r.cfg.Diag != nil {
		r.cfg.Diag(format, args...)
	}
}

// Epoch returns the current cluster epoch.
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// IngestLine routes one raw log line to its node's owner. Lines that
// cannot be delivered right now spill durably and redeliver later;
// only parse failures are returned.
func (r *Router) IngestLine(line string) error {
	r.closeMu.Lock()
	closed := r.closed
	r.closeMu.Unlock()
	if closed {
		return ErrRouterClosed
	}
	ev, err := parseLine(line)
	if err != nil {
		r.met.Malformed.Add(1)
		return err
	}
	if ev.Node == "" { // blank
		return nil
	}
	r.route(line, ev.Node)
	return nil
}

// route enqueues a line for its owner's sender, spilling when the
// owner is unknown, unhealthy, or backlogged.
func (r *Router) route(line, node string) {
	r.mu.RLock()
	owner := r.ring.Owner(persist.NodeHash(node))
	ps := r.peers[owner]
	r.mu.RUnlock()
	if ps == nil || !ps.healthy.Load() {
		r.spillLine(line)
		return
	}
	select {
	case ps.ch <- line:
	default:
		r.spillLine(line)
	}
}

func (r *Router) spillLine(line string) {
	r.spillMu.Lock()
	_, err := r.spill.Append([]byte(line))
	if err == nil {
		r.spillN++
	}
	r.spillMu.Unlock()
	if err != nil {
		r.met.SpillErrors.Add(1)
		r.diagf("cluster: spill append: %v", err)
		return
	}
	r.met.Spilled.Add(1)
}

// sender is one peer's delivery goroutine: it coalesces queued lines
// into batches and POSTs them with bounded retry, spilling what it
// cannot deliver. One goroutine per peer keeps per-peer delivery FIFO.
func (r *Router) sender(ps *peerState) {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-ps.stop:
			return
		case line := <-ps.ch:
			batch := append(make([]string, 0, r.cfg.BatchMax), line)
		fill:
			for len(batch) < r.cfg.BatchMax {
				select {
				case more := <-ps.ch:
					batch = append(batch, more)
				default:
					break fill
				}
			}
			ps.inflight.Add(1)
			r.sendBatch(ps, batch)
			ps.inflight.Add(-1)
		}
	}
}

func (r *Router) sendBatch(ps *peerState, batch []string) {
	body := strings.Join(batch, "\n")
	var reply ingestReply
	err := r.cfg.Retry.DoCtx(r.ctx, func(ctx context.Context) error {
		reply = ingestReply{}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ps.URL+"/ingest", strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain")
		resp, err := r.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", ps.URL, resp.Status)
		}
		return json.NewDecoder(resp.Body).Decode(&reply)
	})
	if err != nil {
		// Undeliverable for now: every line in the batch spills, the
		// health loop decides the peer's fate.
		r.met.ForwardErrors.Add(1)
		for _, line := range batch {
			r.spillLine(line)
		}
		return
	}
	r.met.Forwarded.Add(int64(len(batch) - len(reply.Rejected)))
	if len(reply.Rejected) > 0 {
		// Bounced lines (not owned / frozen) respool in order; the drain
		// redelivers them to whoever owns the range by then.
		r.met.RejectedLines.Add(int64(len(reply.Rejected)))
		for _, i := range reply.Rejected {
			if i >= 0 && i < len(batch) {
				r.spillLine(batch[i])
			}
		}
	}
}

// drainLoop periodically redelivers the spill WAL.
func (r *Router) drainLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.DrainInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.drainSpill()
		}
	}
}

// drainSpill rotates the spill WAL at a boundary, re-routes every
// record below it, then truncates what it re-routed. Lines that still
// cannot be delivered respill above the boundary and survive for the
// next pass — at-least-once redelivery, with the instances' dedup
// rings absorbing the repeats.
func (r *Router) drainSpill() {
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	r.spillMu.Lock()
	if r.spillN == 0 {
		r.spillMu.Unlock()
		return
	}
	boundary, err := r.spill.Rotate()
	if err != nil {
		r.spillMu.Unlock()
		r.met.SpillErrors.Add(1)
		return
	}
	r.spillN = 0
	r.spillMu.Unlock()
	var lines []string
	_, rerr := persist.ReplayWAL(r.fsys, r.cfg.SpillDir, 0, func(seq uint64, payload []byte) error {
		if seq < boundary {
			lines = append(lines, string(payload))
		}
		return nil
	})
	if rerr != nil {
		// Damaged spill segments cannot be redelivered; dropping them is
		// the only way out of an otherwise-permanent replay loop.
		r.met.SpillErrors.Add(1)
		r.diagf("cluster: spill replay: %v", rerr)
	}
	for _, line := range lines {
		ev, err := parseLine(line)
		if err != nil || ev.Node == "" {
			continue
		}
		r.route(line, ev.Node)
	}
	_ = r.spill.RemoveSegmentsBelow(boundary)
	r.met.Drained.Add(int64(len(lines)))
}

// healthLoop probes one peer until shutdown.
func (r *Router) healthLoop(ps *peerState) {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-ps.stop:
			return
		case <-t.C:
			r.probe(ps)
		}
	}
}

func (r *Router) probe(ps *peerState) {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.URL+"/healthz", nil)
	ok := false
	if err == nil {
		resp, rerr := r.client.Do(req)
		if rerr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	r.mu.RLock()
	inRing := ps.inRing
	r.mu.RUnlock()
	if ok {
		ps.fails = 0
		ps.oks++
		if !inRing && ps.oks >= r.cfg.ReadmitThreshold && r.isCoordinator() {
			r.readmit(ps)
		} else if inRing && !ps.healthy.Load() && ps.oks >= r.cfg.ReadmitThreshold {
			// A router that locally marked an in-ring peer down resumes
			// direct delivery once the peer answers again.
			ps.healthy.Store(true)
		}
		return
	}
	ps.oks = 0
	ps.fails++
	if inRing && ps.fails >= r.cfg.FailThreshold {
		if r.isCoordinator() {
			r.eject(ps)
		} else if ps.healthy.Load() {
			// Only the coordinator mutates the cluster view; every other
			// router just stops hammering the dead peer and spills its
			// lines for redelivery after the coordinator's eject lands.
			ps.healthy.Store(false)
			r.met.PeerUnhealthy.Add(1)
		}
	}
}

// eject removes a dead peer from the ring and rebalances: survivors
// rebuild the dead peer's ranges from its state directory (takeover),
// then the new ownership pushes to the whole fleet. Until ownership
// lands, lines for the moved ranges bounce and spill — delivered late,
// never lost.
func (r *Router) eject(dead *peerState) {
	r.rebalMu.Lock()
	defer r.rebalMu.Unlock()
	view := r.View()
	m, ok := view.Member(dead.Name)
	if !ok || !m.InRing() {
		return
	}
	r.mu.RLock()
	oldRing := r.ring
	r.mu.RUnlock()
	v2 := view.Clone()
	setMemberState(&v2, dead.Name, persist.StateEjected)
	v2.Epoch++
	r.installView(v2)
	r.met.PeerUnhealthy.Add(1)
	r.met.Rebalances.Add(1)
	alive := v2.RingMembers()
	r.diagf("cluster: peer %s unhealthy, ejected at epoch %d (%d peers remain)", dead.Name, v2.Epoch, len(alive))
	if len(alive) == 0 {
		return // everything spills until someone comes back
	}
	deadRanges := oldRing.Ranges(dead.Name)
	if dead.Dir != "" {
		newRing := NewRing(alive, r.cfg.Vnodes)
		for _, name := range alive {
			moved := Intersect(deadRanges, newRing.Ranges(name))
			if len(moved) == 0 {
				continue
			}
			sp := r.peerByName(name)
			if sp == nil {
				continue
			}
			if err := postJSON(r.client, sp.URL+"/cluster/takeover",
				takeoverRequest{Gen: r.genFor(name), Epoch: v2.Epoch, Dir: dead.Dir, Ranges: moved}, nil); err != nil {
				// The survivor serves these ranges cold: state continuity is
				// lost but rerouted events still flow once ownership lands.
				r.met.TakeoverErrors.Add(1)
				r.diagf("cluster: takeover by %s from %s failed: %v", name, dead.Dir, err)
			}
		}
	}
	r.pushView(v2)
	r.pushOwnershipView(v2)
}

// readmit returns a recovered peer to the ring after probation: the
// ranges it regains hand off live from their current owners (journaled
// two-commit-point migration), then the ring swaps and ownership
// pushes fleet-wide. The old ring stays installed — and the returnee
// stays unhealthy — until every handoff lands: the returnee's stale
// epoch may cover the very ranges it is regaining, so a line routed to
// it before the import would be accepted into state the import then
// replaces. While the handoffs run, lines for the moving ranges hit
// their frozen current owners, bounce, and spill — late, never lost.
func (r *Router) readmit(ps *peerState) {
	r.rebalMu.Lock()
	defer r.rebalMu.Unlock()
	view := r.View()
	m, ok := view.Member(ps.Name)
	if !ok || m.State != persist.StateEjected {
		return
	}
	r.mu.RLock()
	oldRing := r.ring
	r.mu.RUnlock()
	v2 := view.Clone()
	setMemberState(&v2, ps.Name, persist.StateIn)
	v2.Epoch++
	newRing := NewRing(v2.RingMembers(), r.cfg.Vnodes)
	r.diagf("cluster: peer %s rejoining at epoch %d", ps.Name, v2.Epoch)
	gained := newRing.Ranges(ps.Name)
	for _, owner := range oldRing.Members() {
		if owner == ps.Name {
			continue
		}
		src := r.peerByName(owner)
		if src == nil || !src.healthy.Load() {
			continue
		}
		moved := Intersect(oldRing.Ranges(owner), gained)
		if len(moved) == 0 {
			continue
		}
		if err := postJSON(r.client, src.URL+"/cluster/handoff",
			handoffRequest{Gen: r.genFor(owner), Epoch: v2.Epoch, Target: ps.URL, Ranges: moved}, nil); err != nil {
			r.met.HandoffErrors.Add(1)
			r.diagf("cluster: handoff %s -> %s failed: %v", owner, ps.Name, err)
		}
	}
	r.installView(v2) // the ejected→in transition flips healthy back on
	r.pushView(v2)
	r.pushOwnershipView(v2)
	r.met.Readmits.Add(1)
	r.met.Rebalances.Add(1)
	r.diagf("cluster: peer %s readmitted at epoch %d", ps.Name, v2.Epoch)
}

// installView adopts a cluster view with a newer epoch: the ring
// rebuilds from the view's in-ring members, new members gain sender
// and health goroutines, members that left lose theirs (their queued
// lines respill), and a member whose ring state changed has its local
// health flag flipped to match. Views at or below the installed epoch
// are ignored — epochs only move forward. Reports whether the view
// was installed.
func (r *Router) installView(v persist.ViewRecord) bool {
	r.mu.Lock()
	if v.Epoch <= r.view.Epoch {
		r.mu.Unlock()
		return false
	}
	old := r.view
	r.view = v.Clone()
	r.epoch = v.Epoch
	r.ring = NewRing(v.RingMembers(), r.cfg.Vnodes)
	var started, stopped []*peerState
	seen := make(map[string]bool, len(v.Members))
	for _, m := range v.Members {
		seen[m.Name] = true
		ps := r.peers[m.Name]
		if ps == nil {
			ps = &peerState{
				Peer: Peer{Name: m.Name, URL: m.URL, Dir: m.Dir},
				ch:   make(chan string, r.cfg.SendQueue),
				stop: make(chan struct{}),
			}
			ps.healthy.Store(m.InRing())
			r.peers[m.Name] = ps
			started = append(started, ps)
		} else if om, ok := old.Member(m.Name); ok && om.InRing() != m.InRing() {
			ps.healthy.Store(m.InRing())
		}
		ps.inRing = m.InRing()
	}
	for name, ps := range r.peers {
		if !seen[name] {
			delete(r.peers, name)
			stopped = append(stopped, ps)
		}
	}
	r.mu.Unlock()
	for _, ps := range started {
		r.startPeer(ps)
	}
	for _, ps := range stopped {
		r.stopPeer(ps)
	}
	return true
}

// setMemberState rewrites one member's state in a cloned view.
func setMemberState(v *persist.ViewRecord, name, state string) {
	for i := range v.Members {
		if v.Members[i].Name == name {
			v.Members[i].State = state
			return
		}
	}
}

// startPeer launches a peer's sender and health goroutines, refusing
// quietly once shutdown has begun.
func (r *Router) startPeer(ps *peerState) {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return
	}
	r.wg.Add(2)
	r.closeMu.Unlock()
	go r.sender(ps)
	go r.healthLoop(ps)
}

// stopPeer ends a departed member's goroutines and respills whatever
// was queued for it — the next drain re-routes those lines to the
// ranges' new owners.
func (r *Router) stopPeer(ps *peerState) {
	close(ps.stop)
	for {
		select {
		case line := <-ps.ch:
			r.spillLine(line)
		default:
			return
		}
	}
}

// goTracked runs fn on a WaitGroup-tracked goroutine, refusing once
// shutdown has begun. Reports whether fn was started.
func (r *Router) goTracked(fn func()) bool {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return false
	}
	r.wg.Add(1)
	r.closeMu.Unlock()
	go func() {
		defer r.wg.Done()
		fn()
	}()
	return true
}

func (r *Router) peerByName(name string) *peerState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.peers[name]
}

// genFor returns the fencing generation to stamp on a control post to
// the named peer: the newest generation that peer reported in a lease
// reply, or 0 (unfenced) when election is disabled.
func (r *Router) genFor(name string) uint64 {
	if !r.election {
		return 0
	}
	if ps := r.peerByName(name); ps != nil {
		return ps.leaseGen.Load()
	}
	return 0
}

// pushOwnership installs the ring's assignment on every named peer.
func (r *Router) pushOwnership(epoch uint64, ring *Ring, names []string) {
	for _, name := range names {
		ps := r.peerByName(name)
		if ps == nil {
			continue
		}
		req := ownershipRequest{Gen: r.genFor(name), Epoch: epoch, Ranges: ring.Ranges(name)}
		if err := postJSON(r.client, ps.URL+"/cluster/ownership", req, nil); err != nil {
			r.diagf("cluster: ownership push to %s: %v", name, err)
		}
	}
}

// Flush drives the router to quiescence: every queued, in-flight and
// spilled line delivered (or ctx expired). Used by graceful shutdown
// and the equivalence tests.
func (r *Router) Flush(ctx context.Context) error {
	settled := 0
	for {
		r.drainSpill()
		if r.quiescent() {
			settled++
			// Two consecutive quiet passes: nothing was in flight between
			// them, so no line can still be wandering.
			if settled >= 2 {
				return nil
			}
		} else {
			settled = 0
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func (r *Router) quiescent() bool {
	r.spillMu.Lock()
	spilled := r.spillN
	r.spillMu.Unlock()
	if spilled != 0 {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, ps := range r.peers {
		if len(ps.ch) != 0 || ps.inflight.Load() != 0 {
			return false
		}
	}
	return true
}

// Kill simulates a SIGKILL for the chaos harness: ingest stops and
// background goroutines are cancelled, but nothing is waited for, no
// lease is released, and the spill WAL is left unclosed — the state a
// killed process leaves behind. Safe to call from inside a
// rebalance-step hook (Close would deadlock there: the hook runs on a
// WaitGroup goroutine Close waits for).
func (r *Router) Kill() {
	r.killed.Store(true)
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return
	}
	r.closed = true
	r.closeMu.Unlock()
	r.cancel()
}

// Close stops ingest and every background goroutine, then closes the
// spill WAL. Undelivered spill records stay on disk and redeliver on
// the next start.
func (r *Router) Close() error {
	r.closeMu.Lock()
	if r.closed {
		r.closeMu.Unlock()
		return nil
	}
	r.closed = true
	r.closeMu.Unlock()
	r.cancel()
	r.wg.Wait()
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	return r.spill.Close()
}

// Metrics snapshots the router's own counters.
func (r *Router) Metrics() RouterMetricsSnapshot {
	return RouterMetricsSnapshot{
		Epoch:          r.Epoch(),
		Forwarded:      r.met.Forwarded.Load(),
		ForwardErrors:  r.met.ForwardErrors.Load(),
		Malformed:      r.met.Malformed.Load(),
		Spilled:        r.met.Spilled.Load(),
		Drained:        r.met.Drained.Load(),
		SpillErrors:    r.met.SpillErrors.Load(),
		RejectedLines:  r.met.RejectedLines.Load(),
		PeerUnhealthy:  r.met.PeerUnhealthy.Load(),
		Readmits:       r.met.Readmits.Load(),
		Rebalances:     r.met.Rebalances.Load(),
		HandoffErrors:  r.met.HandoffErrors.Load(),
		TakeoverErrors: r.met.TakeoverErrors.Load(),
		Coordinator:    r.isCoordinator(),
		Elections:      r.met.Elections.Load(),
	}
}

// View returns a copy of the currently installed cluster view.
func (r *Router) View() persist.ViewRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.view.Clone()
}

// IsCoordinator reports whether this router currently holds the
// coordinator role (always true when election is disabled).
func (r *Router) IsCoordinator() bool { return r.isCoordinator() }

func (r *Router) isCoordinator() bool {
	return !r.election || r.coordinator.Load()
}
