module desh

go 1.22
