// Command deshtrain runs Desh's training Phases 1 and 2 on a raw log
// file and writes the trained model.
//
// Usage:
//
//	deshtrain -in train.log -model desh.model [-epochs1 2 -epochs2 150 -batch 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"desh"
	"desh/internal/buildinfo"
)

func main() {
	in := flag.String("in", "", "training log file (required)")
	model := flag.String("model", "desh.model", "output model file")
	epochs1 := flag.Int("epochs1", 2, "Phase-1 training epochs (0 skips Phase 1)")
	epochs2 := flag.Int("epochs2", 150, "Phase-2 training epochs")
	batch := flag.Int("batch", 8, "Phase-1 mini-batch size (1 = serial)")
	batch2 := flag.Int("batch2", 1, "Phase-2 mini-batch size (default serial: batching trades lead-time precision for throughput)")
	seed := flag.Int64("seed", 1, "training seed")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.Fprint(os.Stdout, "deshtrain")
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	cfg := desh.DefaultConfig()
	cfg.Epochs1 = *epochs1
	cfg.Epochs2 = *epochs2
	cfg.Batch = *batch
	cfg.Batch2 = *batch2
	cfg.Seed = *seed
	p, err := desh.NewPredictor(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	report, err := p.TrainFromReader(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	out, err := os.Create(*model)
	if err != nil {
		fatal(err)
	}
	defer out.Close()
	if err := p.Save(out); err != nil {
		fatal(err)
	}
	fmt.Printf("deshtrain: %d events, %d nodes, vocab %d, %d failure chains\n",
		report.Events, report.Nodes, report.Vocab, report.FailureChains)
	if *epochs1 > 0 {
		fmt.Printf("deshtrain: Phase-1 loss %.4f, next-phrase accuracy %.1f%%\n",
			report.Phase1Loss, 100*report.Phase1Accuracy)
	}
	fmt.Printf("deshtrain: Phase-2 final MSE %.4f, model written to %s\n", report.Phase2Loss, *model)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deshtrain:", err)
	os.Exit(1)
}
