// Command deshgen generates synthetic Cray-style system logs for one of
// the paper's four machine profiles (Table 1) — the stand-in for the
// proprietary datasets the paper evaluated on.
//
// Usage:
//
//	deshgen -machine M1 -nodes 160 -hours 336 -failures 260 -seed 31 -o m1.log
//
// Ground truth (failure chains and masked-fault sequences) goes to a
// sidecar file <out>.truth when -truth is set.
package main

import (
	"flag"
	"fmt"
	"os"

	"desh"
	"desh/internal/buildinfo"
)

func main() {
	machine := flag.String("machine", "M1", "machine profile: M1..M4")
	nodes := flag.Int("nodes", 160, "simulated node count")
	hours := flag.Float64("hours", 336, "simulated duration in hours")
	failures := flag.Int("failures", 260, "number of failure chains")
	seed := flag.Int64("seed", 31, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	truth := flag.Bool("truth", false, "also write <out>.truth with ground-truth records")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.Fprint(os.Stdout, "deshgen")
		return
	}

	run, err := desh.GenerateSyntheticLog(desh.SyntheticLogOptions{
		Machine: *machine, Nodes: *nodes, Hours: *hours, Failures: *failures, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := run.WriteTo(w); err != nil {
		fatal(err)
	}
	if *truth {
		name := *out + ".truth"
		if *out == "" {
			name = "deshgen.truth"
		}
		f, err := os.Create(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for _, fr := range run.Failures {
			fmt.Fprintf(f, "failure node=%s class=%s start=%s fail=%s novel=%v\n",
				fr.Node, fr.Class, fr.Start.Format("2006-01-02T15:04:05.000000"),
				fr.FailTime.Format("2006-01-02T15:04:05.000000"), fr.Novel)
		}
		for _, m := range run.Masked {
			fmt.Fprintf(f, "masked node=%s class=%s start=%s end=%s hard=%v\n",
				m.Node, m.Class, m.Start.Format("2006-01-02T15:04:05.000000"),
				m.End.Format("2006-01-02T15:04:05.000000"), m.Hard)
		}
	}
	fmt.Fprintf(os.Stderr, "deshgen: %d events, %d failures, %d masked sequences (%s)\n",
		len(run.Events), len(run.Failures), len(run.Masked), *machine)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deshgen:", err)
	os.Exit(1)
}
