// Command deshpredict runs Desh's Phase-3 inference on a raw test log
// using a model trained by deshtrain, printing one warning per flagged
// node failure (the paper's "In 2.5 minutes, node X located in Y is
// expected to fail"). With -evaluate it also scores the predictions
// against the terminal messages present in the log.
//
// Usage:
//
//	deshpredict -in test.log -model desh.model [-evaluate]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"desh"
	"desh/internal/buildinfo"
	"desh/internal/metrics"
)

func main() {
	in := flag.String("in", "", "test log file (required)")
	model := flag.String("model", "desh.model", "trained model file")
	evaluate := flag.Bool("evaluate", false, "score predictions against ground-truth terminal messages")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.Fprint(os.Stdout, "deshpredict")
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	mf, err := os.Open(*model)
	if err != nil {
		fatal(err)
	}
	p, err := desh.LoadPredictor(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	preds, err := p.PredictFromReader(f)
	if err != nil {
		fatal(err)
	}
	for _, pr := range preds {
		fmt.Printf("%s  %s\n", pr.FlaggedAt.Format("2006-01-02T15:04:05"), pr)
	}
	fmt.Fprintf(os.Stderr, "deshpredict: %d warnings\n", len(preds))
	if *evaluate {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			fatal(err)
		}
		conf, leads, err := p.EvaluateFromReader(f)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "deshpredict: %v\n", conf)
		fmt.Fprintf(os.Stderr, "deshpredict: leads %v\n", metrics.SummarizeLeads(leads))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deshpredict:", err)
	os.Exit(1)
}
