// Command deshpredict runs Desh's Phase-3 inference on a raw test log
// using a model trained by deshtrain, printing one warning per flagged
// node failure (the paper's "In 2.5 minutes, node X located in Y is
// expected to fail"). With -evaluate it also scores the predictions
// against the terminal messages present in the log.
//
// Usage:
//
//	deshpredict -in test.log -model desh.model [-evaluate]
package main

import (
	"flag"
	"fmt"
	"os"

	"desh"
	"desh/internal/metrics"
)

func main() {
	in := flag.String("in", "", "test log file (required)")
	model := flag.String("model", "desh.model", "trained model file")
	evaluate := flag.Bool("evaluate", false, "score predictions against ground-truth terminal messages")
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	mf, err := os.Open(*model)
	if err != nil {
		fatal(err)
	}
	p, err := desh.LoadPredictor(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	lines := splitLines(string(data))
	preds, err := p.PredictLines(lines)
	if err != nil {
		fatal(err)
	}
	for _, pr := range preds {
		fmt.Printf("%s  %s\n", pr.FlaggedAt.Format("2006-01-02T15:04:05"), pr)
	}
	fmt.Fprintf(os.Stderr, "deshpredict: %d warnings\n", len(preds))
	if *evaluate {
		conf, leads, err := p.EvaluateLines(lines)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "deshpredict: %v\n", conf)
		fmt.Fprintf(os.Stderr, "deshpredict: leads %v\n", metrics.SummarizeLeads(leads))
	}
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				lines = append(lines, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deshpredict:", err)
	os.Exit(1)
}
