// Command deshd is Desh's online inference daemon: the streaming
// counterpart of deshpredict. It loads a model trained by deshtrain,
// then continuously ingests raw log lines — from stdin or a file
// (-in), a line-oriented TCP listener (-listen), and/or an HTTP ingest
// endpoint (-http) — and prints one warning line per predicted node
// failure as the events arrive, instead of replaying a finished log
// after the fact.
//
// Usage:
//
//	deshgen -machine M2 | deshd -model desh.model -http :8080
//	deshd -model desh.model -listen :4224 -early -idle-flush 5m
//
// Warnings go to stdout; operational chatter to stderr. With -http,
// GET /metrics returns the counter registry as JSON (events ingested
// and dropped, open chains, alerts fired, per-shard queue depths, and
// the detect-latency histogram), POST /ingest accepts log lines,
// GET /healthz reports liveness, and /debug/vars exposes the same
// counters over expvar. SIGINT/SIGTERM drain every ingested event
// before exit; -once exits as soon as -in is fully drained (replay
// mode, used by the Makefile smoke test).
//
// Aggregated feeds deliver events out of order, duplicated, and
// occasionally from nodes with broken clocks: -allowed-lateness buffers
// and reorders per node, -dedup-window suppresses re-delivered lines,
// -skew-tolerance quarantines far-future timestamps, and
// -shed-policy degrade trades the least valuable events for liveness
// under overload (see the exit summary's "disorder:" line and the
// matching /metrics counters).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"desh"
	"desh/internal/buildinfo"
	"desh/internal/cluster"
	"desh/internal/retry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deshd:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "desh.model", "trained model file (from deshtrain)")
	in := flag.String("in", "-", `log input: "-" for stdin, a file path, or "" to disable`)
	listen := flag.String("listen", "", "line-oriented TCP ingest address (e.g. :4224); empty disables")
	tcpDial := flag.String("tcp", "", "dial a line-oriented TCP log source (host:port) and ingest from it, reconnecting with backoff; empty disables")
	clusterName := flag.String("cluster-name", "", "join a deshrouter cluster as this member name (requires -http; adds /cluster/* control plane)")
	httpAddr := flag.String("http", "", "HTTP address for /metrics, /ingest, /healthz, /debug/vars; empty disables")
	shards := flag.Int("shards", 0, "per-node state shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "per-shard ingest queue depth")
	drop := flag.Bool("drop", false, "shed load when a shard queue fills instead of blocking ingest")
	quiet := flag.Duration("quiet", 2*time.Minute, "per-node alert dedup window in log time (0 disables)")
	early := flag.Bool("early", false, "raise provisional alerts while a chain is still open")
	idle := flag.Duration("idle-flush", 0, "score a node's open chain after this much wall-clock silence (0 disables)")
	window := flag.Int("window", 4096, "per-node open-chain window bound (0 = unbounded)")
	once := flag.Bool("once", false, "exit after -in reaches EOF and all events drain (replay mode)")
	stateDir := flag.String("state-dir", "", "crash-recovery state directory (snapshots + WAL); empty disables persistence")
	snapEvery := flag.Duration("snapshot-every", 30*time.Second, "period between state snapshots (with -state-dir)")
	lateness := flag.Duration("allowed-lateness", 0, "per-node event-time reorder window (0 disables reordering)")
	late := flag.String("late", "feed", `late-event policy: "feed" (clamped timestamp) or "drop"`)
	dedup := flag.Int("dedup-window", 0, "per-node duplicate-suppression ring size (0 disables)")
	skew := flag.Duration("skew-tolerance", 0, "quarantine events this far ahead of the local clock (0 disables)")
	shed := flag.String("shed-policy", "off", `overload degradation: "off" or "degrade" (walk shed levels under pressure)`)
	microBatch := flag.Int("micro-batch", 32, "events one shard wakeup coalesces and scores as a batch (1 disables)")
	precision := flag.String("precision", "f64", `serving precision: "f64" (bit-identical to batch) or "f32" (float32 kernels, alert-equivalent)`)
	retrainEvery := flag.Duration("retrain-every", 0, "retrain a candidate model from the WAL at this interval (0 disables; requires -state-dir)")
	driftThreshold := flag.Float64("drift-threshold", 0, "retrain when the drift score reaches this (0 disables; requires -state-dir)")
	shadowWindow := flag.Int("shadow-window", 200, "closed-chain verdicts a candidate is shadow-scored on before swapping")
	swapPolicy := flag.String("swap-policy", "auto", `candidate promotion: "auto" (shadow-gate then swap), "shadow" (evaluate only), "immediate"`)
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.Fprint(os.Stdout, "deshd")
		return nil
	}

	mf, err := os.Open(*model)
	if err != nil {
		return err
	}
	p, err := desh.LoadPredictor(mf)
	mf.Close()
	if err != nil {
		return err
	}

	prec, err := desh.ParsePrecision(*precision)
	if err != nil {
		return err
	}

	opts := []desh.StreamOption{
		desh.WithQueueDepth(*queue),
		desh.WithQuietPeriod(*quiet),
		desh.WithEarlyDetect(*early),
		desh.WithIdleFlush(*idle),
		desh.WithMaxOpenWindow(*window),
		desh.WithMicroBatch(*microBatch),
		desh.WithPrecision(prec),
	}
	if *shards > 0 {
		opts = append(opts, desh.WithShards(*shards))
	}
	if *drop {
		opts = append(opts, desh.WithDropPolicy(desh.StreamDropNewest))
	}
	if *stateDir != "" {
		opts = append(opts, desh.WithStateDir(*stateDir), desh.WithSnapshotEvery(*snapEvery))
		fmt.Fprintf(os.Stderr, "deshd: crash recovery enabled, state in %s\n", *stateDir)
	}
	if *lateness > 0 {
		opts = append(opts, desh.WithAllowedLateness(*lateness))
	}
	switch *late {
	case "feed":
		opts = append(opts, desh.WithLatePolicy(desh.StreamLateFeed))
	case "drop":
		opts = append(opts, desh.WithLatePolicy(desh.StreamLateDrop))
	default:
		return fmt.Errorf("-late must be feed or drop, got %q", *late)
	}
	if *dedup > 0 {
		opts = append(opts, desh.WithDedupWindow(*dedup))
	}
	if *skew > 0 {
		opts = append(opts, desh.WithSkewTolerance(*skew))
	}
	switch *shed {
	case "off":
	case "degrade":
		opts = append(opts, desh.WithShedPolicy(desh.StreamShedDegrade))
	default:
		return fmt.Errorf("-shed-policy must be off or degrade, got %q", *shed)
	}
	opts = append(opts, desh.WithStreamDiag(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "deshd: "+format+"\n", args...)
	}))
	if *clusterName != "" && *httpAddr == "" {
		return fmt.Errorf("-cluster-name requires -http: the router drives this instance over its control plane")
	}
	s, err := desh.NewStreamer(p, opts...)
	if err != nil {
		return err
	}
	var inst *cluster.Instance
	if *clusterName != "" {
		inst = cluster.NewInstance(*clusterName, s, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "deshd: "+format+"\n", args...)
		})
		if epoch, ranges := inst.Ownership(); epoch > 0 {
			fmt.Fprintf(os.Stderr, "deshd: recovered cluster ownership: epoch %d, %d range(s)\n", epoch, len(ranges))
		}
		if lease, ok := s.RecoveredLease(); ok && lease.Holder != "" {
			fmt.Fprintf(os.Stderr, "deshd: recovered coordinator lease: holder %q, fencing gen %d\n", lease.Holder, lease.Gen)
		}
		if view, ok := s.RecoveredView(); ok {
			fmt.Fprintf(os.Stderr, "deshd: recovered membership view: epoch %d, %d member(s)\n", view.Epoch, len(view.Members))
		}
	}
	if replayed := s.SnapshotMetrics().ReplayedEvents; replayed > 0 {
		fmt.Fprintf(os.Stderr, "deshd: recovered %d events from the WAL tail\n", replayed)
	}
	if file := s.ActiveModelFile(); file != "" {
		fmt.Fprintf(os.Stderr, "deshd: serving hot-swapped model %s from the state dir\n", file)
	}
	fmt.Fprintf(os.Stderr, "deshd: serving precision %s (weight conversions %d)\n",
		prec, s.SnapshotMetrics().PrecisionConversions)

	var learner *desh.Learner
	if *retrainEvery > 0 || *driftThreshold > 0 {
		if *stateDir == "" {
			return fmt.Errorf("-retrain-every/-drift-threshold require -state-dir: the WAL is the retraining corpus")
		}
		policy, err := desh.ParseSwapPolicy(*swapPolicy)
		if err != nil {
			return err
		}
		learner, err = desh.NewLearner(s, p, desh.LearnerConfig{
			StateDir:       *stateDir,
			RetrainEvery:   *retrainEvery,
			DriftThreshold: *driftThreshold,
			ShadowWindow:   *shadowWindow,
			Policy:         policy,
			Diag:           os.Stderr, // lines arrive prefixed "adapt: "
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "deshd: continuous learning armed (policy %s, shadow window %d)\n", policy, *shadowWindow)
	}

	// Warning printer: runs until Close closes the alert channel, so
	// every alert from the final drain is still printed before exit.
	alertsDone := make(chan struct{})
	go func() {
		defer close(alertsDone)
		for a := range s.Alerts() {
			tag := ""
			if a.Provisional {
				tag = " [provisional]"
			}
			fmt.Printf("%s%s  in %.1f minutes, node %s located in %s is expected to fail (mse %.3f)\n",
				a.FlaggedAt.Format("2006-01-02T15:04:05"), tag,
				a.LeadSeconds/60, a.Node, desh.NodeLocation(a.Node), a.MSE)
		}
	}()

	var ln net.Listener
	if *listen != "" {
		ln, err = net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "deshd: TCP ingest on %s\n", ln.Addr())
		go func() {
			if err := s.ServeLines(ln); err != nil {
				fmt.Fprintln(os.Stderr, "deshd: tcp:", err)
			}
		}()
	}

	// Dial-out ingest: connect to a remote line source and reconnect
	// with capped exponential backoff — a source that is down at boot
	// (ECONNREFUSED) or drops mid-stream is retried, never fatal.
	dialStop := make(chan struct{})
	if *tcpDial != "" {
		go func() {
			pol := retry.Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second}
			attempt := 0
			for {
				conn, err := net.Dial("tcp", *tcpDial)
				if err != nil {
					attempt++
					fmt.Fprintf(os.Stderr, "deshd: tcp dial %s: %v (attempt %d, retrying)\n", *tcpDial, err, attempt)
					if !pol.Wait(dialStop, attempt) {
						return
					}
					continue
				}
				attempt = 0
				fmt.Fprintf(os.Stderr, "deshd: tcp ingest from %s\n", conn.RemoteAddr())
				ierr := s.IngestReader(conn)
				conn.Close()
				if errors.Is(ierr, desh.ErrStreamClosed) {
					return
				}
				select {
				case <-dialStop:
					return
				default:
				}
				fmt.Fprintf(os.Stderr, "deshd: tcp source %s dropped, reconnecting\n", *tcpDial)
				if !pol.Wait(dialStop, attempt) {
					return
				}
			}
		}()
	}

	var srv *http.Server
	if *httpAddr != "" {
		start := time.Now()
		expvar.Publish("deshd", expvar.Func(func() any { return s.SnapshotMetrics() }))
		mux := http.NewServeMux()
		if inst != nil {
			// Cluster mode: the instance handler serves /ingest (ownership
			// gated), /metrics (with cluster epoch and owned ranges), and
			// the /cluster/* control plane the router drives.
			mux.Handle("/", inst.Handler())
		} else {
			mux.Handle("/metrics", s.MetricsHandler())
			mux.Handle("/ingest", s.IngestHandler())
			mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%.0f}\n", time.Since(start).Seconds())
			})
		}
		mux.Handle("/debug/vars", expvar.Handler())
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "deshd: HTTP on %s\n", hln.Addr())
		// ReadHeaderTimeout keeps a peer that opens a connection and never
		// finishes its headers from pinning a handler goroutine forever.
		srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := srv.Serve(hln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "deshd: http:", err)
			}
		}()
	}

	inDone := make(chan error, 1)
	if *in != "" {
		var r io.Reader
		if *in == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		go func() { inDone <- s.IngestReader(r) }()
	}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case sig := <-sigC:
			fmt.Fprintf(os.Stderr, "deshd: %v, draining\n", sig)
		case err := <-inDone:
			if err != nil && !errors.Is(err, desh.ErrStreamClosed) {
				fmt.Fprintln(os.Stderr, "deshd: ingest:", err)
			}
			if !*once {
				// Input exhausted but listeners stay up; keep serving.
				inDone = nil
				continue
			}
			fmt.Fprintln(os.Stderr, "deshd: input drained, shutting down")
		}
		break
	}

	close(dialStop)
	if ln != nil {
		ln.Close()
	}
	if learner != nil {
		learner.Close()
	}
	if err := s.Close(); err != nil {
		return err
	}
	<-alertsDone
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}
	snap := s.SnapshotMetrics()
	fmt.Fprintf(os.Stderr,
		"deshd: ingested %d (safe %d, malformed %d, oversized %d, dropped %d, quarantined %d), chains closed %d, alerts fired %d (suppressed %d, undelivered %d), shard restarts %d, batch occupancy %.2f (batched detects %d), precision %s (conversions %d), detect p50 %.0fµs p99 %.0fµs\n",
		snap.Ingested, snap.SafeFiltered, snap.Malformed, snap.Oversized, snap.Dropped, snap.Quarantined,
		snap.ChainsClosed, snap.AlertsFired, snap.AlertsSuppressed, snap.AlertsDropped,
		snap.ShardRestarts, snap.BatchOccupancy, snap.BatchedDetects,
		snap.ModelPrecision, snap.PrecisionConversions,
		snap.Detect.P50Micros, snap.Detect.P99Micros)
	fmt.Fprintf(os.Stderr,
		"deshd: disorder: late %d (dropped %d, clamped %d), duplicates %d, skew-quarantined %d, reorder overflow %d, window evicted %d, shed %d (max level %d)\n",
		snap.Late, snap.LateDropped, snap.LateClamped, snap.Duplicates, snap.SkewQuarantined,
		snap.ReorderOverflow, snap.WindowEvicted, snap.Shed, snap.ShedLevelMax)
	fmt.Fprintf(os.Stderr,
		"deshd: learning: drift %.2f, unseen phrases %d, retrains %d (failed %d), shadow scored %d (accepted %d, rejected %d, dropped %d), swaps %d (errors %d)\n",
		snap.DriftScore, snap.UnseenPhrases, snap.Retrains, snap.RetrainFailures,
		snap.ShadowScored, snap.ShadowAccepted, snap.ShadowRejected, snap.ShadowDropped,
		snap.Swaps, snap.SwapErrors)
	return nil
}
