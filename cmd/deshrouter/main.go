// Command deshrouter is the ingest tier for a deshd cluster: it owns
// the consistent-hash ring over N deshd instances, forwards each raw
// log line to the instance owning its node, and keeps the cluster
// converged through failures — per-peer health probing with ejection
// and probation readmission, dead-peer takeover from a shared state
// directory, live range handoffs on readmission, and a local spill WAL
// so lines bound for an unreachable owner are delivered late instead
// of lost.
//
// Usage:
//
//	deshrouter -peers a=http://host1:8080=/shared/a,b=http://host2:8080=/shared/b \
//	           -spill-dir /var/lib/deshrouter -http :9090
//	deshgen -machine M2 | nc host 9090   # or POST lines to :9090/ingest
//
// Each -peers entry is name=url[=dir]; dir is the instance's state
// directory on a shared filesystem and enables takeover when that
// instance dies. GET /metrics returns the aggregated fleet view (router
// counters, per-instance snapshots, cross-fleet totals), GET
// /cluster/status the ring and per-peer health, GET /healthz liveness.
// SIGINT/SIGTERM flush the spill WAL and in-flight batches before exit;
// a second signal forces immediate exit without flushing.
//
// Passing -name enables replicated operation: several deshrouters with
// distinct names may front the same fleet. They elect one coordinator
// by quorum lease over the instances (lowest name wins, -lease-ttl
// bounds failover time); only the coordinator runs ejection, readmission
// and takeover orchestration, and only it accepts POST
// /cluster/rebalance (add/drain/remove of members at runtime). The
// others keep forwarding and spilling and stand by to take over.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"desh/internal/buildinfo"
	"desh/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deshrouter:", err)
		os.Exit(1)
	}
}

func parsePeers(spec string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 3)
		if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=url[=dir])", entry)
		}
		p := cluster.Peer{Name: parts[0], URL: strings.TrimSuffix(parts[1], "/")}
		if len(parts) == 3 {
			p.Dir = parts[2]
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is required (name=url[=dir],...)")
	}
	return peers, nil
}

func run() error {
	peersSpec := flag.String("peers", "", "cluster members: name=url[=dir],... (dir enables dead-peer takeover)")
	spillDir := flag.String("spill-dir", "", "local WAL for undeliverable lines (required)")
	httpAddr := flag.String("http", ":9090", "HTTP address for /ingest, /metrics, /cluster/status, /healthz")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default 64)")
	healthEvery := flag.Duration("health-interval", 250*time.Millisecond, "per-peer health probe period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "single health probe timeout")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a peer is ejected")
	readmitThreshold := flag.Int("readmit-threshold", 3, "consecutive probe successes before an ejected peer rejoins")
	drainEvery := flag.Duration("drain-interval", 250*time.Millisecond, "spill WAL redelivery period")
	batchMax := flag.Int("batch-max", 256, "max lines per forwarded batch")
	sendQueue := flag.Int("send-queue", 4096, "per-peer in-memory send queue; overflow spills")
	name := flag.String("name", "", "router name; enables coordinator election for replicated routers")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Second, "coordinator lease TTL (with -name); bounds failover time")
	flushTimeout := flag.Duration("flush-timeout", 10*time.Second, "shutdown bound on delivering queued and spilled lines")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.Fprint(os.Stdout, "deshrouter")
		return nil
	}

	peers, err := parsePeers(*peersSpec)
	if err != nil {
		return err
	}
	if *spillDir == "" {
		return fmt.Errorf("-spill-dir is required")
	}
	r, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:            peers,
		Vnodes:           *vnodes,
		SpillDir:         *spillDir,
		HealthInterval:   *healthEvery,
		HealthTimeout:    *healthTimeout,
		FailThreshold:    *failThreshold,
		ReadmitThreshold: *readmitThreshold,
		DrainInterval:    *drainEvery,
		BatchMax:         *batchMax,
		SendQueue:        *sendQueue,
		Name:             *name,
		LeaseTTL:         *leaseTTL,
		Diag: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "deshrouter: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if *name != "" {
		fmt.Fprintf(os.Stderr, "deshrouter: %q routing for %d peer(s), spill in %s, lease TTL %v\n",
			*name, len(peers), *spillDir, *leaseTTL)
	} else {
		fmt.Fprintf(os.Stderr, "deshrouter: routing for %d peer(s), spill in %s\n", len(peers), *spillDir)
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		r.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "deshrouter: HTTP on %s\n", ln.Addr())
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "deshrouter: http:", err)
		}
	}()

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	sig := <-sigC
	fmt.Fprintf(os.Stderr, "deshrouter: %v, flushing (signal again to force exit)\n", sig)
	go func() {
		sig2 := <-sigC
		fmt.Fprintf(os.Stderr, "deshrouter: %v again, forcing exit without flush\n", sig2)
		os.Exit(1)
	}()

	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = srv.Shutdown(sctx)
	cancel()
	fctx, fcancel := context.WithTimeout(context.Background(), *flushTimeout)
	if err := r.Flush(fctx); err != nil {
		fmt.Fprintln(os.Stderr, "deshrouter: flush:", err)
	}
	fcancel()
	snap := r.Metrics()
	if err := r.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"deshrouter: forwarded %d (errors %d, rejected %d), spilled %d (drained %d, errors %d), rebalances %d (ejections %d, readmits %d), handoff errors %d, takeover errors %d\n",
		snap.Forwarded, snap.ForwardErrors, snap.RejectedLines,
		snap.Spilled, snap.Drained, snap.SpillErrors,
		snap.Rebalances, snap.PeerUnhealthy, snap.Readmits,
		snap.HandoffErrors, snap.TakeoverErrors)
	if *name != "" {
		role := "standby"
		if snap.Coordinator {
			role = "coordinator"
		}
		fmt.Fprintf(os.Stderr, "deshrouter: exited as %s after %d election round(s)\n", role, snap.Elections)
	}
	return nil
}
