// Command deshexp regenerates every table and figure of the paper's
// evaluation section on synthetic machine logs.
//
// Usage:
//
//	deshexp                 # everything at default scale
//	deshexp -scale quick    # faster, smaller datasets
//	deshexp -exp fig4,fig8  # a subset of experiments
//
// Experiment ids: table1 table2 table3 table4 table5 fig4 fig5 fig6
// fig7 fig8 fig9 table9 fig10 table10 table11 ngram ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"desh/internal/buildinfo"
	"desh/internal/deeplog"
	"desh/internal/experiments"
	"desh/internal/metrics"
)

func main() {
	scaleName := flag.String("scale", "default", "dataset scale: default or quick")
	expList := flag.String("exp", "all", "comma-separated experiment ids or 'all'")
	epochs1 := flag.Int("epochs1", 2, "Phase-1 epochs")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()
	if *showVersion {
		buildinfo.Fprint(os.Stdout, "deshexp")
		return
	}

	scale := experiments.DefaultScale()
	if *scaleName == "quick" {
		scale = experiments.QuickScale()
	}
	cfg := experiments.DefaultPipelineConfig()
	cfg.Epochs1 = *epochs1

	want := map[string]bool{}
	for _, id := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	// Static tables need no training.
	if sel("table1") {
		fmt.Println(experiments.Table1(scale))
	}
	if sel("table2") {
		fmt.Println(experiments.Table2(scale.Seed))
	}
	if sel("table3") {
		fmt.Println(experiments.Table3())
	}
	if sel("table4") {
		out, err := experiments.Table4(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if sel("table5") {
		fmt.Println(experiments.Table5(cfg))
	}

	needsRuns := false
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table9", "fig10", "table10", "table11", "ngram", "ablation"} {
		if sel(id) {
			needsRuns = true
		}
	}
	var results []*experiments.SystemResult
	if needsRuns {
		fmt.Fprintf(os.Stderr, "deshexp: running the four systems (this trains eight LSTMs)...\n")
		var err error
		results, err = experiments.RunAllSystems(scale, cfg)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "deshexp: %s trained on %d chains, %v\n", r.Machine, r.Train.FailureChains, r.Conf)
		}
	}
	if sel("fig4") {
		fmt.Println(experiments.Fig4(results))
	}
	if sel("fig5") {
		fmt.Println(experiments.Fig5(results))
	}
	if sel("fig6") {
		fmt.Println(experiments.Fig6Table7(results))
	}
	if sel("fig7") {
		fmt.Println(experiments.Fig7(results))
	}
	if sel("fig8") {
		fmt.Println(experiments.Fig8(results[0]))
	}
	if sel("fig9") {
		fmt.Println(experiments.Table8Figure9(results[0]))
	}
	if sel("table9") {
		fmt.Println(experiments.Table9(results[0]))
	}
	if sel("fig10") {
		fmt.Println(experiments.Fig10(results[0]))
	}
	if sel("table10") || sel("table11") {
		dcfg := deeplog.DefaultConfig()
		dlog, err := experiments.RunDeepLog(results[0], dcfg)
		if err != nil {
			fatal(err)
		}
		if sel("table10") {
			fmt.Println(experiments.Table10(results[0], dlog))
		}
		if sel("table11") {
			fmt.Println(experiments.Table11(results[0], dlog))
		}
	}
	if sel("ngram") {
		ng, lstm := experiments.NgramComparison(results[0], 3)
		fmt.Printf("n-gram baseline: trigram next-phrase accuracy %.1f%% vs Phase-1 LSTM %.1f%%\n\n", 100*ng, 100*lstm)
	}
	if sel("ablation") && len(results) > 0 {
		fmt.Fprintln(os.Stderr, "deshexp: running history-size ablation (retrains Phase 1 twice)...")
		full, reduced, err := experiments.HistoryAblation(results[0].TrainEvents, cfg, 3)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("History ablation (%s): history %d accuracy %.1f%%, history 3 accuracy %.1f%% (drop %.1f points; paper: 10-14)\n\n",
			results[0].Machine, cfg.History1, 100*full, 100*reduced, 100*(full-reduced))
	}
	if needsRuns {
		fmt.Println("Summary (Observation 3): per-system lead times")
		for _, r := range results {
			fmt.Printf("  %s: %v, lead %v\n", r.Machine, r.Conf, metrics.SummarizeLeads(r.Leads))
		}
		classStd, sysStd := experiments.Observation4(results)
		fmt.Printf("Observation 4: mean per-class lead std %.1fs < mean per-system std %.1fs: %v\n",
			classStd, sysStd, classStd < sysStd)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deshexp:", err)
	os.Exit(1)
}
