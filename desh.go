// Package desh is a Go reproduction of "Desh: Deep Learning for System
// Health Prediction of Lead Times to Failure in HPC" (Das, Mueller,
// Siegel, Vishnu — HPDC 2018).
//
// Desh predicts node failures in HPC clusters from unstructured system
// logs, with per-node lead times, using a three-phase stacked-LSTM
// pipeline: (1) train to recognize chains of log events leading to a
// failure, (2) re-train chain recognition augmented with expected lead
// times to failure, and (3) predict lead times at inference to report
// which specific node fails in how many minutes.
//
// The package is a facade over the internal substrates (pure-Go LSTM
// with backprop-through-time, skip-gram embeddings, Cray-style log
// parsing, failure-chain formation and a synthetic log generator for
// the paper's four machines):
//
//	p, _ := desh.NewPredictor(desh.DefaultConfig())
//	_ = p.TrainFromReader(trainLog)
//	preds, _ := p.PredictFromReader(testLog)
//	for _, pr := range preds {
//	    fmt.Printf("in %.1f minutes, node %s located in %s is expected to fail\n",
//	        pr.LeadSeconds/60, pr.Node, pr.Location)
//	}
package desh

import (
	"fmt"
	"io"
	"strings"
	"time"

	"desh/internal/core"
	"desh/internal/logparse"
	"desh/internal/logsim"
	"desh/internal/metrics"
)

// Config is the pipeline configuration; defaults mirror Table 5 of the
// paper. See internal/core for field documentation.
type Config = core.Config

// DefaultConfig returns the paper's Table-5 settings.
func DefaultConfig() Config { return core.DefaultConfig() }

// Prediction is one impending-failure warning: the §4.5 "In 2.5
// minutes, node X located in Y is expected to fail" message, as data.
type Prediction struct {
	// Node is the Cray node id (cA-BcCsSnN).
	Node string
	// Location spells out cabinet/chassis/blade/node decoded from the id.
	Location string
	// LeadSeconds is the predicted time remaining until the failure.
	LeadSeconds float64
	// FlaggedAt is the timestamp of the log event at which the failure
	// was flagged.
	FlaggedAt time.Time
}

// String renders the paper's warning sentence.
func (p Prediction) String() string {
	return fmt.Sprintf("in %.1f minutes, node %s located in %s is expected to fail",
		p.LeadSeconds/60, p.Node, p.Location)
}

// Predictor is a trainable Desh instance operating on raw log text.
type Predictor struct {
	pipeline *core.Pipeline
}

// NewPredictor builds an untrained predictor.
func NewPredictor(cfg Config) (*Predictor, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Predictor{pipeline: p}, nil
}

// Pipeline exposes the underlying three-phase pipeline for advanced use
// (labeler overrides, trained-chain inspection, per-phase models).
func (p *Predictor) Pipeline() *core.Pipeline { return p.pipeline }

// TrainFromReader parses raw log lines and runs training Phases 1 and 2.
func (p *Predictor) TrainFromReader(r io.Reader) (*core.TrainReport, error) {
	events, err := logparse.ParseReader(r)
	if err != nil {
		return nil, err
	}
	return p.pipeline.Train(events)
}

// TrainLines is TrainFromReader over an in-memory line slice.
func (p *Predictor) TrainLines(lines []string) (*core.TrainReport, error) {
	return p.TrainFromReader(strings.NewReader(strings.Join(lines, "\n")))
}

// PredictFromReader runs Phase-3 inference over raw test log lines and
// returns a warning for every flagged node failure.
func (p *Predictor) PredictFromReader(r io.Reader) ([]Prediction, error) {
	events, err := logparse.ParseReader(r)
	if err != nil {
		return nil, err
	}
	verdicts, err := p.pipeline.Predict(events)
	if err != nil {
		return nil, err
	}
	var preds []Prediction
	for _, v := range verdicts {
		if !v.Flagged {
			continue
		}
		loc, err := logsim.Location(v.Node)
		if err != nil {
			loc = "unknown location"
		}
		preds = append(preds, Prediction{
			Node:        v.Node,
			Location:    loc,
			LeadSeconds: v.LeadSeconds,
			FlaggedAt:   v.AnchorTime,
		})
	}
	return preds, nil
}

// PredictLines is PredictFromReader over an in-memory line slice.
func (p *Predictor) PredictLines(lines []string) ([]Prediction, error) {
	return p.PredictFromReader(strings.NewReader(strings.Join(lines, "\n")))
}

// EvaluateLines runs Phase 3 and scores the verdicts against the
// ground-truth terminal messages contained in the lines themselves,
// returning the Table-6 confusion matrix and the true-positive lead
// times in seconds.
func (p *Predictor) EvaluateLines(lines []string) (metrics.Confusion, []float64, error) {
	return p.EvaluateFromReader(strings.NewReader(strings.Join(lines, "\n")))
}

// EvaluateFromReader is EvaluateLines over raw log text from r.
func (p *Predictor) EvaluateFromReader(r io.Reader) (metrics.Confusion, []float64, error) {
	events, err := logparse.ParseReader(r)
	if err != nil {
		return metrics.Confusion{}, nil, err
	}
	verdicts, err := p.pipeline.Predict(events)
	if err != nil {
		return metrics.Confusion{}, nil, err
	}
	conf, leads := core.Score(verdicts)
	return conf, leads, nil
}

// Save serializes a trained predictor for later reuse.
func (p *Predictor) Save(w io.Writer) error { return p.pipeline.Save(w) }

// LoadPredictor restores a predictor previously written by Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	pipeline, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Predictor{pipeline: pipeline}, nil
}

// Machines returns the paper's four machine profiles (Table 1).
func Machines() []logsim.Profile { return logsim.Profiles() }

// SyntheticLogOptions scales a generated dataset.
type SyntheticLogOptions struct {
	Machine  string // M1..M4
	Nodes    int
	Hours    float64
	Failures int
	Seed     int64
}

// GenerateSyntheticLog builds a synthetic Cray-style log run for one of
// the paper's machine profiles — the substitute for the proprietary
// Table-1 datasets. It returns the run (with ground truth) whose Lines
// method yields raw log text.
func GenerateSyntheticLog(opts SyntheticLogOptions) (*logsim.Run, error) {
	profile, ok := logsim.ProfileByName(opts.Machine)
	if !ok {
		return nil, fmt.Errorf("desh: unknown machine %q (want M1..M4)", opts.Machine)
	}
	return logsim.Generate(logsim.Config{
		Profile:  profile,
		Nodes:    opts.Nodes,
		Hours:    opts.Hours,
		Failures: opts.Failures,
		Seed:     opts.Seed,
	})
}

// SplitLines divides time-ordered log lines into a training prefix
// covering frac of the time span and a test remainder (the paper uses
// 30% / 70%).
func SplitLines(lines []string, frac float64) (train, test []string, err error) {
	events, err := logparse.ParseReader(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		return nil, nil, err
	}
	trainEvents, _ := core.SplitEvents(events, frac)
	return lines[:len(trainEvents)], lines[len(trainEvents):], nil
}
