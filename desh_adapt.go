package desh

import (
	"desh/internal/adapt"
)

// Learner is the continuous-learning manager: it watches a Streamer's
// drift signals, retrains candidate models in the background from the
// crash-recovery WAL, shadow-scores them against live traffic, and
// hot-swaps winners in without dropping an event. See LearnerConfig
// for the knobs and the deshd flags -retrain-every, -drift-threshold,
// -shadow-window and -swap-policy for the operator surface.
type Learner = adapt.Manager

// LearnerConfig tunes a Learner; the zero value plus StateDir and at
// least one armed trigger (RetrainEvery or DriftThreshold) is a
// working configuration.
type LearnerConfig = adapt.Config

// SwapPolicy selects what happens after a candidate model trains:
// shadow-gate then swap (auto), evaluate only (shadow), or swap
// without evaluation (immediate).
type SwapPolicy = adapt.Policy

const (
	SwapPolicyAuto      = adapt.PolicyAuto
	SwapPolicyShadow    = adapt.PolicyShadow
	SwapPolicyImmediate = adapt.PolicyImmediate
)

// ParseSwapPolicy maps "auto", "shadow" or "immediate" to a SwapPolicy.
func ParseSwapPolicy(s string) (SwapPolicy, error) { return adapt.ParsePolicy(s) }

// NewLearner starts continuous learning for s, which must have been
// built from p with a state directory (the WAL is the training
// corpus). Close the Learner before closing the Streamer.
func NewLearner(s *Streamer, p *Predictor, cfg LearnerConfig) (*Learner, error) {
	return adapt.New(s, p.Pipeline(), cfg)
}
