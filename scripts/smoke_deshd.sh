#!/bin/sh
# Smoke test for the deshd online inference daemon: generate a
# synthetic log, train a small model, pipe the log into a running
# daemon, and assert that (1) at least one alert with a positive lead
# time reaches stdout, (2) the /metrics endpoint reports non-zero
# ingest, and (3) SIGINT produces a clean drain and exit 0.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
PORT=${DESHD_PORT:-18230}

echo "smoke: building into $WORK"
$GO build -o "$WORK/" ./cmd/deshgen ./cmd/deshtrain ./cmd/deshd

echo "smoke: generating + training (small scale)"
"$WORK/deshgen" -machine M3 -nodes 30 -hours 48 -failures 30 -seed 7 -o "$WORK/train.log"
"$WORK/deshgen" -machine M3 -nodes 30 -hours 24 -failures 16 -seed 97 -o "$WORK/test.log"
"$WORK/deshtrain" -in "$WORK/train.log" -model "$WORK/desh.model" -epochs1 0 -epochs2 150 -seed 32

echo "smoke: starting deshd (no -once: stays up after EOF for the metrics probe)"
# The event-time flags run too: a sorted replay must behave identically
# with reordering, dedup, the skew guard and the shed controller armed.
"$WORK/deshd" -model "$WORK/desh.model" -in "$WORK/test.log" -http "127.0.0.1:$PORT" \
    -allowed-lateness 10s -dedup-window 64 -skew-tolerance 5m -shed-policy degrade \
    > "$WORK/alerts.out" 2> "$WORK/deshd.err" &
PID=$!

# Wait until every test-log event has been ingested (or time out).
tries=0
lines=$(grep -c . "$WORK/test.log")
while :; do
    got=$(curl -sf "http://127.0.0.1:$PORT/metrics" 2>/dev/null \
        | sed -n 's/^ *"ingested": \([0-9]*\),$/\1/p' || true)
    [ "${got:-0}" -ge "$lines" ] && break
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: FAIL — ingested ${got:-0}/$lines after 10s" >&2
        cat "$WORK/deshd.err" >&2
        kill "$PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
echo "smoke: metrics endpoint reports $got/$lines events ingested"

kill -INT "$PID"
wait "$PID" || { echo "smoke: FAIL — deshd exited non-zero" >&2; cat "$WORK/deshd.err" >&2; exit 1; }

alerts=$(grep -c 'expected to fail' "$WORK/alerts.out" || true)
if [ "$alerts" -lt 1 ]; then
    echo "smoke: FAIL — no alerts on stdout" >&2
    cat "$WORK/deshd.err" >&2
    exit 1
fi
if ! grep -Eq 'in [0-9]+\.[0-9] minutes' "$WORK/alerts.out"; then
    echo "smoke: FAIL — alerts carry no positive lead time" >&2
    head -5 "$WORK/alerts.out" >&2
    exit 1
fi

if ! grep -q 'disorder: late' "$WORK/deshd.err"; then
    echo "smoke: FAIL — exit summary missing the disorder line" >&2
    cat "$WORK/deshd.err" >&2
    exit 1
fi

echo "smoke: OK — $alerts alerts, clean SIGINT shutdown"
head -3 "$WORK/alerts.out"
