#!/bin/sh
# CI throughput gate for the serving path. Runs
# BenchmarkStreamThroughput (pre-parsed events through IngestEvent at
# micro-batch widths 1, 8, 32) and fails if the B=1 per-event rate —
# the path every idle shard still takes — regressed more than 10%
# against the newest checked-in BENCH_PR*.json baseline.
#
# Raw events/sec is machine-dependent, so the floor is overridable:
#   DESH_BENCH_MIN_EVENTS=250000 scripts/bench_gate.sh   # explicit floor
#   DESH_BENCH_MIN_EVENTS=0      scripts/bench_gate.sh   # record, never fail
#   DESH_BENCH_TIME=1s           scripts/bench_gate.sh   # per-bench budget
set -eu

GO=${GO:-go}

# Default the baseline to the newest BENCH_PR<n>.json by PR number, so
# the gate rebases automatically when a PR records fresh numbers.
if [ -z "${BASE_JSON:-}" ]; then
    BASE_JSON=$(for f in BENCH_PR*.json; do
        n=${f#BENCH_PR}
        n=${n%.json}
        printf '%s %s\n' "$n" "$f"
    done | sort -n | tail -n 1 | cut -d' ' -f2)
fi
if [ -z "${BASE_JSON:-}" ] || [ ! -f "$BASE_JSON" ]; then
    echo "bench_gate: FAIL — no BENCH_PR*.json baseline found" >&2
    exit 1
fi
echo "bench_gate: baseline $BASE_JSON"

if [ -n "${DESH_BENCH_MIN_EVENTS:-}" ]; then
    floor=$DESH_BENCH_MIN_EVENTS
else
    baseline=$(sed -n 's/^ *"b1_baseline_events_per_sec": \([0-9]*\).*/\1/p' "$BASE_JSON")
    if [ -z "$baseline" ]; then
        echo "bench_gate: FAIL — no b1_baseline_events_per_sec in $BASE_JSON" >&2
        exit 1
    fi
    floor=$((baseline * 90 / 100))
fi

echo "bench_gate: running StreamThroughput (floor: $floor events/sec at micro-batch 1)"
out=$($GO test ./internal/stream/ -run '^$' -bench '^BenchmarkStreamThroughput$' \
    -benchtime "${DESH_BENCH_TIME:-2s}" -count 1)
echo "$out"

# Benchmark lines read "BenchmarkStreamThroughput/micro-batch-1-4  N  ns/op
# ... 53141 events/sec ..."; take the number preceding the unit token.
b1=$(echo "$out" | awk '$1 ~ /micro-batch-1-|micro-batch-1$/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "events/sec") printf "%.0f", $i
}')
if [ -z "$b1" ]; then
    echo "bench_gate: FAIL — could not parse micro-batch-1 events/sec" >&2
    exit 1
fi

if [ "$b1" -lt "$floor" ]; then
    echo "bench_gate: FAIL — micro-batch-1 ran $b1 events/sec, floor $floor" >&2
    exit 1
fi
echo "bench_gate: OK — micro-batch-1 ran $b1 events/sec (floor $floor)"
