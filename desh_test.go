package desh

import (
	"strings"
	"testing"
)

func generateLines(t *testing.T, machine string, seed int64) []string {
	t.Helper()
	run, err := GenerateSyntheticLog(SyntheticLogOptions{
		Machine: machine, Nodes: 60, Hours: 120, Failures: 90, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Lines()
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs1 = 0
	return cfg
}

func TestGenerateSyntheticLogUnknownMachine(t *testing.T) {
	if _, err := GenerateSyntheticLog(SyntheticLogOptions{Machine: "M9", Nodes: 1, Hours: 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMachines(t *testing.T) {
	ms := Machines()
	if len(ms) != 4 || ms[0].Name != "M1" {
		t.Fatalf("unexpected machines %v", ms)
	}
}

func TestSplitLines(t *testing.T) {
	lines := generateLines(t, "M3", 5)
	train, test, err := SplitLines(lines, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != len(lines) {
		t.Fatal("split lost lines")
	}
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("degenerate split")
	}
}

func TestPredictorEndToEnd(t *testing.T) {
	lines := generateLines(t, "M2", 6)
	train, test, err := SplitLines(lines, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.TrainLines(train)
	if err != nil {
		t.Fatal(err)
	}
	if report.FailureChains == 0 {
		t.Fatal("no chains learned")
	}
	preds, err := p.PredictLines(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no failure warnings produced")
	}
	for _, pr := range preds {
		if pr.Node == "" || pr.LeadSeconds < 0 {
			t.Fatalf("bad prediction %+v", pr)
		}
		s := pr.String()
		if !strings.Contains(s, pr.Node) || !strings.Contains(s, "expected to fail") {
			t.Fatalf("warning text %q", s)
		}
		if !strings.Contains(pr.Location, "cabinet") {
			t.Fatalf("location %q", pr.Location)
		}
	}
	conf, leads, err := p.EvaluateLines(test)
	if err != nil {
		t.Fatal(err)
	}
	if conf.TP == 0 {
		t.Fatalf("no true positives: %v", conf)
	}
	if len(leads) != conf.TP {
		t.Fatalf("%d leads for %d TPs", len(leads), conf.TP)
	}
}

func TestNewPredictorValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinMatches = 0
	if _, err := NewPredictor(cfg); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestTrainFromReaderBadInput(t *testing.T) {
	p, err := NewPredictor(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainFromReader(strings.NewReader("not a log line\n")); err == nil {
		t.Fatal("expected parse error")
	}
}
