package desh

import (
	"context"
	"time"

	"desh/internal/core"
	"desh/internal/logsim"
	"desh/internal/stream"
)

// ErrStreamClosed is returned by a Streamer's ingest entry points after
// Close (or after its context is canceled).
var ErrStreamClosed = stream.ErrClosed

// NodeLocation decodes a Cray node id (cA-BcCsSnN) into its spelled-out
// cabinet/chassis/blade/node location, or "unknown location" when the
// id does not parse — the streaming counterpart of Prediction.Location.
func NodeLocation(node string) string {
	loc, err := logsim.Location(node)
	if err != nil {
		return "unknown location"
	}
	return loc
}

// Streamer is the online inference engine: it ingests raw log lines
// incrementally, maintains per-node failure-chain state across a shard
// pool, and emits Alerts on a subscriber channel — the serving-layer
// counterpart of the batch PredictFromReader. See NewStreamer.
type Streamer = stream.Streamer

// Alert is one live impending-failure warning from a Streamer.
type Alert = stream.Alert

// StreamOption tunes a Streamer (see the With* constructors).
type StreamOption = stream.Option

// StreamMetrics is a point-in-time view of a Streamer's counters.
type StreamMetrics = stream.MetricsSnapshot

// Queue-full policies for WithDropPolicy.
const (
	// StreamBlock applies backpressure on a full shard queue.
	StreamBlock = stream.Block
	// StreamDropNewest sheds the incoming event on a full shard queue.
	StreamDropNewest = stream.DropNewest
)

// Late-event policies for WithLatePolicy.
const (
	// StreamLateFeed feeds late events to the chain tracker anyway; the
	// tracker clamps their timestamp forward so ΔT never goes negative.
	StreamLateFeed = stream.LateFeed
	// StreamLateDrop discards events that miss their reorder window.
	StreamLateDrop = stream.LateDrop
)

// Overload policies for WithShedPolicy.
const (
	// StreamShedOff disables graceful degradation (default).
	StreamShedOff = stream.ShedOff
	// StreamShedDegrade enables the level-walking overload controller.
	StreamShedDegrade = stream.ShedDegrade
)

// NewStreamer turns a trained predictor into an online inference
// engine. Feed it lines (IngestLine, IngestReader, ServeLines or the
// HTTP ingest handler) and range over Alerts():
//
//	s, _ := desh.NewStreamer(p, desh.WithEarlyDetect(true))
//	go s.IngestReader(tail)
//	for a := range s.Alerts() {
//	    fmt.Printf("node %s predicted to fail in %.1f min\n", a.Node, a.LeadSeconds/60)
//	}
//
// The predictor's labeler and encoder are shared with the streamer and
// must not be mutated (Override, batch Predict/Train) while it runs.
// Close drains all ingested events and then closes the alert channel.
func NewStreamer(p *Predictor, opts ...StreamOption) (*Streamer, error) {
	return stream.New(p.pipeline, opts...)
}

// WithShards sets how many per-node state shards run inference
// concurrently (default GOMAXPROCS).
func WithShards(n int) StreamOption { return stream.WithShards(n) }

// WithQueueDepth bounds each shard's ingest queue (default 1024).
func WithQueueDepth(n int) StreamOption { return stream.WithQueueDepth(n) }

// WithDropPolicy selects the full-queue behavior: StreamBlock
// (backpressure, default) or StreamDropNewest (shed load, memory flat).
func WithDropPolicy(p stream.Policy) StreamOption { return stream.WithPolicy(p) }

// WithAlertBuffer sizes the alert subscriber channel (default 256).
func WithAlertBuffer(n int) StreamOption { return stream.WithAlertBuffer(n) }

// WithQuietPeriod suppresses repeat alerts per node until this much log
// time has passed (default 2m; 0 disables dedup).
func WithQuietPeriod(d time.Duration) StreamOption { return stream.WithQuietPeriod(d) }

// WithMaxOpenWindow bounds each node's open chain window (default 4096;
// 0 = unbounded, exact batch parity).
func WithMaxOpenWindow(n int) StreamOption { return stream.WithMaxOpenWindow(n) }

// WithEarlyDetect raises provisional alerts while a chain is still
// open — ahead of the node's terminal message — using the model's
// predicted lead time.
func WithEarlyDetect(on bool) StreamOption { return stream.WithEarlyDetect(on) }

// WithIdleFlush closes a node's open episode after d of wall-clock
// silence so a node that dies mid-chain still gets scored (0 disables).
func WithIdleFlush(d time.Duration) StreamOption { return stream.WithIdleFlush(d) }

// WithStreamContext ties the streamer's lifetime to ctx: cancellation
// triggers the same graceful drain as Close.
func WithStreamContext(ctx context.Context) StreamOption { return stream.WithContext(ctx) }

// WithStateDir enables crash-safe operation: per-node state snapshots
// and a write-ahead log of ingested events live in dir, and NewStreamer
// recovers from them — restored open chains, alert-dedup state and a
// WAL tail replay — before accepting new events. Empty (the default)
// disables persistence.
func WithStateDir(dir string) StreamOption { return stream.WithStateDir(dir) }

// WithSnapshotEvery sets the period between state snapshots (default
// 30s). Between snapshots, recovery replays the WAL tail.
func WithSnapshotEvery(d time.Duration) StreamOption { return stream.WithSnapshotEvery(d) }

// WithWALSyncEvery sets the write-ahead log's fsync cadence in records
// (default 64): a killed process loses nothing, an OS crash loses at
// most this many events.
func WithWALSyncEvery(n int) StreamOption { return stream.WithWALSyncEvery(n) }

// WithMaxEventRetries sets how many shard panics one event may cause
// before it is quarantined as poisoned (default 3).
func WithMaxEventRetries(n int) StreamOption { return stream.WithMaxEventRetries(n) }

// WithRestartBackoff sets the base delay before a panicked shard
// restarts; it doubles per consecutive crash, jittered, capped at 1s
// (default 10ms).
func WithRestartBackoff(d time.Duration) StreamOption { return stream.WithRestartBackoff(d) }

// WithMaxConns caps concurrent ServeLines connections; excess accepts
// are counted and closed (default 256).
func WithMaxConns(n int) StreamOption { return stream.WithMaxConns(n) }

// WithConnIdleTimeout drops a ServeLines connection that delivers
// nothing for d (default 5m; 0 disables).
func WithConnIdleTimeout(d time.Duration) StreamOption { return stream.WithConnIdleTimeout(d) }

// WithMaxBodyBytes bounds one HTTP ingest request body (default 8 MiB).
func WithMaxBodyBytes(n int64) StreamOption { return stream.WithMaxBodyBytes(n) }

// WithAllowedLateness enables per-node event-time reordering: events
// buffer until the node's watermark (max seen timestamp minus d) passes
// them, so bounded arrival disorder is invisible to the ΔT math. 0 (the
// default) disables the reorder buffer.
func WithAllowedLateness(d time.Duration) StreamOption { return stream.WithAllowedLateness(d) }

// WithReorderDepth bounds each node's reorder buffer (default 512);
// when full, the earliest buffered event releases ahead of the
// watermark (counted in reorder_overflow).
func WithReorderDepth(n int) StreamOption { return stream.WithReorderDepth(n) }

// WithLatePolicy selects what happens to events that miss their reorder
// window: StreamLateFeed (default — fed with a clamped timestamp) or
// StreamLateDrop.
func WithLatePolicy(p stream.LatePolicy) StreamOption { return stream.WithLatePolicy(p) }

// WithDedupWindow suppresses re-delivered duplicates: each node
// remembers its last n accepted (timestamp, phrase) pairs and drops
// repeats — retried TCP batches fire each alert once. 0 (the default)
// disables dedup.
func WithDedupWindow(n int) StreamOption { return stream.WithDedupWindow(n) }

// WithSkewTolerance quarantines events whose timestamp leads the local
// clock by more than d — a node with a broken clock is counted and
// diagnosed, never crashed on or allowed to poison watermarks. 0 (the
// default) disables the guard.
func WithSkewTolerance(d time.Duration) StreamOption { return stream.WithSkewTolerance(d) }

// WithMicroBatch caps how many queued events one shard wakeup drains
// and scores together: chains closed during the drain go through the
// batched gate GEMM kernels as one DetectBatch pass. There is no
// batching timer — the batch is whatever backlog exists at wakeup, so
// an idle shard keeps per-event latency. Per chain, batched verdicts
// are bit-identical to serial ones. 1 disables coalescing (default 32,
// max 256).
func WithMicroBatch(n int) StreamOption { return stream.WithMicroBatch(n) }

// Precision selects the serving numeric path of a Streamer. Training
// and model files are float64 regardless; PrecisionF32 converts the
// trained weights once per adopted model and scores through the float32
// kernels — half the model-resident bytes and wider SIMD, gated by
// alert equivalence rather than bitwise parity with the f64 path.
type Precision = core.Precision

const (
	// PrecisionF64 (default) serves bit-identically to the batch
	// pipeline.
	PrecisionF64 = core.PrecisionF64
	// PrecisionF32 serves through the float32 inference stack.
	PrecisionF32 = core.PrecisionF32
)

// ParsePrecision parses a -precision flag value ("f64" or "f32").
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// WithPrecision sets the Streamer's serving numeric path (default
// PrecisionF64).
func WithPrecision(p Precision) StreamOption { return stream.WithPrecision(p) }

// WithShedPolicy selects the overload behavior: StreamShedOff (default)
// or StreamShedDegrade, which walks through explicit degradation levels
// (shrink lateness, shed Unknown-labeled events, per-node fair random
// shedding) as queue depth or detect latency climbs, and walks back
// when the overload passes.
func WithShedPolicy(p stream.ShedPolicy) StreamOption { return stream.WithShedPolicy(p) }

// WithStreamDiag routes one-line operational diagnostics (clock-skew
// quarantines, shed level transitions) to fn; nil (the default)
// discards them.
func WithStreamDiag(fn func(format string, args ...any)) StreamOption {
	return stream.WithDiag(fn)
}
