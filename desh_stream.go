package desh

import (
	"context"
	"time"

	"desh/internal/logsim"
	"desh/internal/stream"
)

// ErrStreamClosed is returned by a Streamer's ingest entry points after
// Close (or after its context is canceled).
var ErrStreamClosed = stream.ErrClosed

// NodeLocation decodes a Cray node id (cA-BcCsSnN) into its spelled-out
// cabinet/chassis/blade/node location, or "unknown location" when the
// id does not parse — the streaming counterpart of Prediction.Location.
func NodeLocation(node string) string {
	loc, err := logsim.Location(node)
	if err != nil {
		return "unknown location"
	}
	return loc
}

// Streamer is the online inference engine: it ingests raw log lines
// incrementally, maintains per-node failure-chain state across a shard
// pool, and emits Alerts on a subscriber channel — the serving-layer
// counterpart of the batch PredictFromReader. See NewStreamer.
type Streamer = stream.Streamer

// Alert is one live impending-failure warning from a Streamer.
type Alert = stream.Alert

// StreamOption tunes a Streamer (see the With* constructors).
type StreamOption = stream.Option

// StreamMetrics is a point-in-time view of a Streamer's counters.
type StreamMetrics = stream.MetricsSnapshot

// Queue-full policies for WithDropPolicy.
const (
	// StreamBlock applies backpressure on a full shard queue.
	StreamBlock = stream.Block
	// StreamDropNewest sheds the incoming event on a full shard queue.
	StreamDropNewest = stream.DropNewest
)

// NewStreamer turns a trained predictor into an online inference
// engine. Feed it lines (IngestLine, IngestReader, ServeLines or the
// HTTP ingest handler) and range over Alerts():
//
//	s, _ := desh.NewStreamer(p, desh.WithEarlyDetect(true))
//	go s.IngestReader(tail)
//	for a := range s.Alerts() {
//	    fmt.Printf("node %s predicted to fail in %.1f min\n", a.Node, a.LeadSeconds/60)
//	}
//
// The predictor's labeler and encoder are shared with the streamer and
// must not be mutated (Override, batch Predict/Train) while it runs.
// Close drains all ingested events and then closes the alert channel.
func NewStreamer(p *Predictor, opts ...StreamOption) (*Streamer, error) {
	return stream.New(p.pipeline, opts...)
}

// WithShards sets how many per-node state shards run inference
// concurrently (default GOMAXPROCS).
func WithShards(n int) StreamOption { return stream.WithShards(n) }

// WithQueueDepth bounds each shard's ingest queue (default 1024).
func WithQueueDepth(n int) StreamOption { return stream.WithQueueDepth(n) }

// WithDropPolicy selects the full-queue behavior: StreamBlock
// (backpressure, default) or StreamDropNewest (shed load, memory flat).
func WithDropPolicy(p stream.Policy) StreamOption { return stream.WithPolicy(p) }

// WithAlertBuffer sizes the alert subscriber channel (default 256).
func WithAlertBuffer(n int) StreamOption { return stream.WithAlertBuffer(n) }

// WithQuietPeriod suppresses repeat alerts per node until this much log
// time has passed (default 2m; 0 disables dedup).
func WithQuietPeriod(d time.Duration) StreamOption { return stream.WithQuietPeriod(d) }

// WithMaxOpenWindow bounds each node's open chain window (default 4096;
// 0 = unbounded, exact batch parity).
func WithMaxOpenWindow(n int) StreamOption { return stream.WithMaxOpenWindow(n) }

// WithEarlyDetect raises provisional alerts while a chain is still
// open — ahead of the node's terminal message — using the model's
// predicted lead time.
func WithEarlyDetect(on bool) StreamOption { return stream.WithEarlyDetect(on) }

// WithIdleFlush closes a node's open episode after d of wall-clock
// silence so a node that dies mid-chain still gets scored (0 disables).
func WithIdleFlush(d time.Duration) StreamOption { return stream.WithIdleFlush(d) }

// WithStreamContext ties the streamer's lifetime to ctx: cancellation
// triggers the same graceful drain as Close.
func WithStreamContext(ctx context.Context) StreamOption { return stream.WithContext(ctx) }
