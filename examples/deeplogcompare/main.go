// Desh vs DeepLog: run both detectors on the same synthetic machine
// logs and contrast them the way the paper's §4.5 does — DeepLog flags
// individual anomalous log entries (no lead time, no failure/no-failure
// distinction), Desh flags failure chains with a lead-time estimate and
// the failing node's physical location (Tables 10 and 11).
package main

import (
	"fmt"
	"log"

	"desh/internal/deeplog"
	"desh/internal/experiments"
	"desh/internal/logsim"
	"desh/internal/metrics"
)

func main() {
	scale := experiments.Scale{Nodes: 90, Hours: 168, Failures: 130, Seed: 21}
	cfg := experiments.DefaultPipelineConfig()
	cfg.Epochs1 = 1

	profile := logsim.Profiles()[2] // M3
	fmt.Printf("running Desh on %s (%s)...\n", profile.Name, profile.System)
	result, err := experiments.RunSystem(profile, scale, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training DeepLog on the same 30% split...")
	dlog, err := experiments.RunDeepLog(result, deeplog.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(experiments.Table10(result, dlog))
	fmt.Println(experiments.Table11(result, dlog))

	leads := metrics.SummarizeLeads(result.Leads)
	fmt.Println("what DeepLog cannot give you, measured:")
	fmt.Printf("  Desh true positives came with %.1fs average warning (max %.1fs);\n", leads.Mean, leads.Max)
	fmt.Println("  DeepLog's per-entry anomalies carry no time-to-failure at all, and")
	fmt.Printf("  on anomalous-but-harmless sequences DeepLog's FP rate is %.1f%% vs Desh's %.1f%%\n",
		100*dlog.Conf.FPRate(), 100*result.Conf.FPRate())
}
