// Lead-time study: reproduce the paper's Table-7/Figure-6 analysis on
// one machine — how predicted lead times differ by failure class (kernel
// panics give ~1 minute of warning, machine-check exceptions closer to
// 2-3 minutes), and the Figure-8 tradeoff between flagging earlier and
// accepting more false positives.
package main

import (
	"fmt"
	"log"

	"desh/internal/catalog"
	"desh/internal/experiments"
	"desh/internal/logsim"
	"desh/internal/metrics"
)

func main() {
	scale := experiments.Scale{Nodes: 100, Hours: 192, Failures: 150, Seed: 7}
	cfg := experiments.DefaultPipelineConfig()
	cfg.Epochs1 = 0 // this study only needs Phases 2 and 3

	profile := mustProfile("M2") // M2 has the longest lead times (Fig 7)
	fmt.Println("training Desh on", profile.Name, "(", profile.System, ")...")
	result, err := experiments.RunSystem(profile, scale, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction quality: %v\n\n", result.Conf)

	fmt.Println("lead times by failure class (paper Table 7 ordering:")
	fmt.Println("Panic < Job < Traps < FS < H/W < MCE):")
	stats := experiments.ClassLeadStats([]*experiments.SystemResult{result})
	for _, cl := range []catalog.Class{
		catalog.ClassPanic, catalog.ClassJob, catalog.ClassTraps,
		catalog.ClassFS, catalog.ClassHardware, catalog.ClassMCE,
	} {
		s := stats[cl]
		fmt.Printf("  %-12s n=%-3d avg %6.1fs  std %5.1fs\n", cl, s.N, s.Mean, s.Std)
	}

	all := metrics.SummarizeLeads(result.Leads)
	fmt.Printf("\nsystem-wide: %v\n", all)

	fmt.Println("\nlead time vs false positives (paper Figure 8):")
	for _, p := range experiments.LeadTimeSensitivity(result) {
		fmt.Printf("  threshold %.2f, matches %d: avg lead %6.1fs, FP rate %5.1f%%, recall %5.1f%%\n",
			p.Threshold, p.MinMatches, p.AvgLead, 100*p.FPRate, 100*p.Recall)
	}
}

func mustProfile(name string) logsim.Profile {
	p, ok := logsim.ProfileByName(name)
	if !ok {
		log.Fatalf("unknown machine %q", name)
	}
	return p
}
