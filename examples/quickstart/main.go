// Quickstart: generate a small synthetic Cray log, train Desh on the
// first 30% of the timeline, and print failure warnings for the rest —
// the end-to-end path of the paper in one file.
package main

import (
	"fmt"
	"log"

	"desh"
)

func main() {
	// A slice of machine M1 (Cray XC30): 60 nodes, 5 days, 80 failures.
	run, err := desh.GenerateSyntheticLog(desh.SyntheticLogOptions{
		Machine: "M1", Nodes: 60, Hours: 120, Failures: 80, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	lines := run.Lines()
	fmt.Printf("generated %d log lines, %d real failures, %d masked faults\n",
		len(lines), len(run.Failures), len(run.Masked))

	train, test, err := desh.SplitLines(lines, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := desh.DefaultConfig()
	cfg.Epochs1 = 1 // Phase 1 trained lightly for a quick demo
	p, err := desh.NewPredictor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := p.TrainLines(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: vocab %d phrases, %d failure chains, Phase-1 accuracy %.0f%%\n",
		report.Vocab, report.FailureChains, 100*report.Phase1Accuracy)

	preds, err := p.PredictLines(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d warnings on the test window; first few:\n", len(preds))
	for i, pr := range preds {
		if i >= 5 {
			break
		}
		fmt.Println(" ", pr)
	}

	conf, leads, err := p.EvaluateLines(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscored against ground truth: %v\n", conf)
	mean := 0.0
	for _, l := range leads {
		mean += l
	}
	if len(leads) > 0 {
		mean /= float64(len(leads))
	}
	fmt.Printf("average lead time on true positives: %.1f seconds\n", mean)
}
