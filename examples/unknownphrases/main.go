// Unknown-phrase analysis: reproduce §4.3 of the paper — which
// "Unknown"-labeled phrases (anomalous but not definitely fatal) end up
// contributing to node failures, and which appear just as often in
// sequences that never kill a node (Tables 8 and 9, Figure 9).
package main

import (
	"fmt"
	"log"
	"sort"

	"desh/internal/catalog"
	"desh/internal/chain"
	"desh/internal/label"
	"desh/internal/logparse"
	"desh/internal/logsim"
)

func main() {
	run, err := logsim.Generate(logsim.Config{
		Profile: logsim.Profiles()[0], Nodes: 120, Hours: 240, Failures: 200, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	var events []logparse.Event
	for _, ge := range run.Events {
		ev, err := logparse.ParseLine(ge.Line())
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, ev)
	}
	var enc logparse.Encoder
	byNode := logparse.ByNode(logparse.EncodeEvents(&enc, events))
	failures, candidates, err := chain.ExtractAll(byNode, label.New(), chain.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d failure chains and %d non-failure anomaly sequences\n\n",
		len(failures), len(candidates))

	stats := chain.CollectPhraseStats(failures, candidates)
	type row struct {
		key     string
		inFail  int
		inCand  int
		contrib float64
	}
	var rows []row
	for id := 0; id < enc.Len(); id++ {
		key := enc.Key(id)
		p, ok := catalog.Lookup(key)
		if !ok || p.Label != catalog.Unknown {
			continue
		}
		f, c := stats.InFailures[id], stats.InCandidate[id]
		if f+c == 0 {
			continue
		}
		rows = append(rows, row{key, f, c, stats.Contribution(id)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].contrib > rows[j].contrib })

	fmt.Println("contribution of Unknown phrases to node failures (Figure 9):")
	fmt.Printf("%-55s %7s %7s %9s\n", "phrase", "inFail", "other", "contrib")
	for _, r := range rows {
		key := r.key
		if len(key) > 55 {
			key = key[:52] + "..."
		}
		fmt.Printf("%-55s %7d %7d %8.1f%%\n", key, r.inFail, r.inCand, 100*r.contrib)
	}

	fmt.Println("\nthe paper's Observation 5: the same phrase can be benign in one")
	fmt.Println("context and part of a failure chain in another — phrases with")
	fmt.Println("contribution strictly between 0% and 100% demonstrate exactly that:")
	both := 0
	for _, r := range rows {
		if r.contrib > 0 && r.contrib < 1 {
			both++
		}
	}
	fmt.Printf("%d of %d Unknown phrases appear on both sides\n", both, len(rows))
}
