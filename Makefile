GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector runs over the packages that fan work out to the
# worker pool (Phase-3 inference, the Figure-8 sweep via experiments'
# core usage, and mini-batch skip-gram training).
race:
	$(GO) test -race ./internal/core/... ./internal/embed/...

# verify is the tier-1 gate: build + full tests, plus vet and the race
# detector over the concurrent packages.
verify: build test vet race

# bench verifies first, then runs the full per-table/figure benchmark
# suite with allocation reporting; results land in bench.txt.
bench: verify
	$(GO) test -bench=. -benchmem -count=5 | tee bench.txt
