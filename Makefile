GO ?= go

.PHONY: build test vet race verify bench fuzz run-deshd

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector runs over the packages that fan work out to the
# worker pool (mini-batch BPTT shards, Phase-3 inference, the Figure-8
# sweep via experiments' core usage, mini-batch skip-gram training),
# the pool itself, the sharded streaming engine behind deshd, its
# crash-recovery substrate, the continuous-learning loop that retrains
# and hot-swaps models behind live traffic, the cluster tier
# (router + instances + retry) that coordinates shard handoff across
# processes, and the f32/f64 kernel parity suites in tensor.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/core/... ./internal/embed/... ./internal/nn/... ./internal/par/... ./internal/stream/... ./internal/chain/... ./internal/persist/... ./internal/adapt/... ./internal/cluster/... ./internal/retry/... ./internal/chaos/... ./internal/tensor/...

# verify is the tier-1 gate: build + full tests, plus vet and the race
# detector over the concurrent packages.
verify: build test vet race

# bench verifies first, then runs the full per-table/figure benchmark
# suite with allocation reporting; results land in bench.txt.
bench: verify
	$(GO) test -bench=. -benchmem -count=5 | tee bench.txt

# fuzz exercises the network-facing line parser and the event-time
# reorder buffer beyond their committed seed corpora (which `test`
# already replays as regular cases).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/logparse/ -fuzz FuzzParseLine -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stream/ -run '^$$' -fuzz FuzzReorderBuffer -fuzztime $(FUZZTIME)

# run-deshd is the daemon smoke test: generate a log, train a small
# model, replay the log through deshd, and assert it raises at least
# one alert, serves non-zero metrics and exits cleanly on SIGINT.
run-deshd:
	./scripts/smoke_deshd.sh
